#include "workloads/hashjoin.hpp"

#include <cassert>

#include "isa/builder.hpp"
#include "sim/rng.hpp"

namespace epf
{

namespace
{

/** A build-side key for index @p i (distinct, scattered). */
std::uint64_t
buildKey(std::uint64_t i, std::uint64_t seed)
{
    return splitmix64(i ^ (seed * 0x5851F42D4C957F2DULL)) | 1;
}

} // namespace

HashJoinWorkload::HashJoinWorkload(Variant v, const WorkloadScale &scale)
    : variant_(v)
{
    if (variant_ == Variant::kOpen) {
        buildTuples_ = scale.scaled(256 * 1024);
        probes_ = scale.scaled(512 * 1024);
        numBuckets_ = std::uint64_t{1} << 19; // 50% occupancy, 8 MB
    } else {
        buildTuples_ = scale.scaled(256 * 1024);
        probes_ = scale.scaled(224 * 1024);
        numBuckets_ = std::uint64_t{1} << 16; // avg chain length 4
    }
    unsigned bits = 0;
    while ((std::uint64_t{1} << bits) < numBuckets_)
        ++bits;
    hashShift_ = 64 - bits;
}

std::uint64_t
HashJoinWorkload::hashOpen(std::uint64_t k) const
{
    return (k * kHashMult) >> hashShift_;
}

std::uint64_t
HashJoinWorkload::hashChained(std::uint64_t k) const
{
    return (k * kHashMult) >> hashShift_;
}

void
HashJoinWorkload::setup(GuestMemory &mem, std::uint64_t seed)
{
    attach(mem);
    Rng rng(seed);
    matches_ = 0;
    shardLo_.assign(1, 0);
    shardCount_.assign(1, 0);

    // Probe keys: ~half hit the build side, half miss.
    probeKeys_.resize(probes_);
    for (std::uint64_t i = 0; i < probes_; ++i) {
        if (rng.below(2) == 0)
            probeKeys_[i] = buildKey(rng.below(buildTuples_), seed);
        else
            probeKeys_[i] = splitmix64(rng.next()) | 2;
    }
    outKeys_.assign(probes_, 0);

    if (variant_ == Variant::kOpen) {
        open_.assign(numBuckets_, Bucket{});
        for (std::uint64_t i = 0; i < buildTuples_; ++i) {
            std::uint64_t k = buildKey(i, seed);
            std::uint64_t h = hashOpen(k);
            while (open_[h].key != 0)
                h = (h + 1) & (numBuckets_ - 1);
            open_[h] = Bucket{k, i};
        }
        mem.addRegion("hj.htab", open_.data(),
                      open_.size() * sizeof(Bucket));
    } else {
        headers_.assign(numBuckets_, Header{});
        pool_.assign(buildTuples_, Node{});
        // Regions first: the chain links are guest addresses, so the
        // pool's guest base must be known before the lists are built.
        mem.addRegion("hj.headers", headers_.data(),
                      headers_.size() * sizeof(Header));
        poolBase_ = mem.addRegion("hj.pool", pool_.data(),
                                  pool_.size() * sizeof(Node));
        // Scatter-allocate nodes: a random permutation of the pool, as a
        // long-running allocator would produce.
        std::vector<std::uint32_t> perm(buildTuples_);
        for (std::uint64_t i = 0; i < buildTuples_; ++i)
            perm[i] = static_cast<std::uint32_t>(i);
        for (std::uint64_t i = buildTuples_ - 1; i > 0; --i)
            std::swap(perm[i], perm[rng.below(i + 1)]);

        for (std::uint64_t i = 0; i < buildTuples_; ++i) {
            std::uint64_t k = buildKey(i, seed);
            std::uint64_t h = hashChained(k);
            Node &n = pool_[perm[i]];
            n.key = k;
            n.payload = i;
            n.next = headers_[h].head;
            headers_[h].head = poolBase_ + perm[i] * sizeof(Node);
            headers_[h].count += 1;
        }
    }

    mem.addRegion("hj.probekeys", probeKeys_.data(),
                  probeKeys_.size() * sizeof(std::uint64_t));
    mem.addRegion("hj.out", outKeys_.data(),
                  outKeys_.size() * sizeof(std::uint64_t));
}

Generator<MicroOp>
HashJoinWorkload::trace(bool with_swpf)
{
    return shardTrace(0, 1, with_swpf);
}

Generator<MicroOp>
HashJoinWorkload::shardTrace(unsigned shard, unsigned shards,
                             bool with_swpf)
{
    // Bookkeeping happens here, eagerly — the coroutine body below only
    // runs when the core first pulls an op, but checksum() needs every
    // shard's output-slice base as soon as the run is assembled.
    if (shardLo_.size() < shards) {
        shardLo_.assign(shards, 0);
        shardCount_.assign(shards, 0);
    }
    const std::uint64_t lo = shard * probes_ / shards;
    const std::uint64_t hi = (shard + 1) * probes_ / shards;
    shardLo_[shard] = lo;
    return probeTrace(shard, lo, hi, with_swpf);
}

Generator<MicroOp>
HashJoinWorkload::probeTrace(unsigned shard, std::uint64_t lo,
                             std::uint64_t hi, bool with_swpf)
{
    OpFactory f;
    const std::uint64_t mask = numBuckets_ - 1;

    // The output cursor starts at the shard's probe-range base: a shard
    // can never find more matches than probes, so slices stay disjoint.
    std::uint64_t out = lo;
    // Last-outcome branch-predictor state, private to this core's
    // trace (each core models its own predictor).
    bool prev_outcome = false;
    unsigned prev_len = 0;

    for (std::uint64_t x = lo; x < hi; ++x) {
        if (with_swpf && x + kSwpfDist < hi) {
            // swpf(&htab[hash(keys[x+dist])]): reload the key (usually a
            // cache hit), redo the hash, issue the prefetch.
            ValueId v_k2;
            co_yield f.load(ga(&probeKeys_[x + kSwpfDist]), 1, v_k2);
            ValueId v_h2;
            co_yield f.workVal(2, v_h2, v_k2);
            const std::uint64_t k2 = probeKeys_[x + kSwpfDist];
            if (variant_ == Variant::kOpen) {
                co_yield OpFactory::swpf(ga(&open_[hashOpen(k2)]), v_h2);
            } else {
                co_yield OpFactory::swpf(ga(&headers_[hashChained(k2)]),
                                         v_h2);
            }
        }

        ValueId v_k;
        co_yield f.load(ga(&probeKeys_[x]), 2, v_k);
        const std::uint64_t k = probeKeys_[x];
        ValueId v_h;
        co_yield f.workVal(4, v_h, v_k); // multiply-shift-mask hash

        if (variant_ == Variant::kOpen) {
            std::uint64_t h = hashOpen(k);
            for (;;) {
                ValueId v_b;
                co_yield f.load(ga(&open_[h]), 3, v_b, v_h);
                co_yield OpFactory::workDep(2, v_b); // compare + bookkeeping
                const bool matched = open_[h].key == k;
                // The match branch depends on the bucket contents; a
                // last-outcome predictor misses whenever it flips.
                if (matched != prev_outcome) {
                    prev_outcome = matched;
                    co_yield OpFactory::branchMiss(v_b);
                }
                if (matched) {
                    matches_ += 1;
                    outKeys_[out] = k;
                    co_yield OpFactory::store(ga(&outKeys_[out]), 4, v_b);
                    ++out;
                    ++shardCount_[shard];
                    break;
                }
                if (open_[h].key == 0)
                    break;
                h = (h + 1) & mask;
                v_h = v_b; // next probe depends on this bucket's contents
            }
        } else {
            const std::uint64_t h = hashChained(k);
            ValueId v_hd;
            co_yield f.load(ga(&headers_[h]), 3, v_hd, v_h);
            ValueId v_prev = v_hd;
            unsigned len = 0;
            for (Addr l = headers_[h].head; l != 0;
                 l = nodeAt(l).next) {
                ++len;
                ValueId v_n;
                co_yield f.load(l, 5, v_n, v_prev);
                co_yield OpFactory::workDep(2, v_n);
                const bool matched = nodeAt(l).key == k;
                if (matched != prev_outcome) {
                    prev_outcome = matched;
                    co_yield OpFactory::branchMiss(v_n);
                }
                if (matched) {
                    matches_ += 1;
                    outKeys_[out] = k;
                    co_yield OpFactory::store(ga(&outKeys_[out]), 4, v_n);
                    ++out;
                    ++shardCount_[shard];
                }
                v_prev = v_n; // pointer chase serialises the walk
            }
            // Loop-exit branch: mispredicts when this bucket's chain
            // length differs from the previous bucket's.
            if (len != prev_len) {
                prev_len = len;
                co_yield OpFactory::branchMiss(v_prev);
            }
        }
    }
}

void
HashJoinWorkload::programManual(ProgrammablePrefetcher &ppf)
{
    const Addr keys_base = ga(probeKeys_.data());
    const std::uint64_t mask = numBuckets_ - 1;

    const unsigned g_keys = ppf.allocGlobal(keys_base);

    if (variant_ == Variant::kOpen) {
        const Addr htab_base = ga(open_.data());
        const unsigned g_htab = ppf.allocGlobal(htab_base);

        // on_keys_prefetch: hash the fetched key, prefetch its bucket.
        KernelBuilder kpf("on_keys_prefetch");
        kpf.vaddr(1)
            .ldLine(2, 1, 0)
            .muli(2, 2, static_cast<std::int64_t>(kHashMult))
            .shri(2, 2, hashShift_)
            .andi(2, 2, static_cast<std::int64_t>(mask))
            .shli(2, 2, 4) // 16-byte buckets
            .gread(3, g_htab)
            .add(2, 2, 3)
            .prefetch(2)
            .halt();
        KernelId k_pf = ppf.kernels().add(kpf.build());

        KernelBuilder kld("on_keys_load");
        kld.vaddr(1)
            .gread(2, g_keys)
            .sub(1, 1, 2)
            .shri(1, 1, 3)
            .lookahead(3, 0)
            .add(1, 1, 3)
            .shli(1, 1, 3)
            .add(1, 1, 2)
            .prefetchCb(1, k_pf)
            .halt();
        KernelId k_ld = ppf.kernels().add(kld.build());

        FilterEntry fe;
        fe.name = "probekeys";
        fe.base = keys_base;
        fe.limit = keys_base + probes_ * 8;
        fe.onLoad = k_ld;
        fe.timeSource = true;
        fe.timedStart = true;
        ppf.addFilter(fe);

        FilterEntry he;
        he.name = "htab";
        he.base = htab_base;
        he.limit = htab_base + numBuckets_ * sizeof(Bucket);
        he.timedEnd = true;
        ppf.addFilter(he);
        return;
    }

    // HJ-8: keys -> header -> tag-chained list walk (the control-flow
    // loop only hand-written events can express, Section 7.1).
    const Addr hdr_base = ga(headers_.data());
    const unsigned g_hdr = ppf.allocGlobal(hdr_base);

    // on_node_prefetch (tag kernel): walk to the next node until null.
    KernelBuilder knode("on_node_prefetch");
    {
        KernelBuilder::Label done = knode.newLabel();
        knode.vaddr(1)
            .ldLine(2, 1, 8) // node->next at offset 8
            .li(3, 0)
            .beq(2, 3, done);
        // prefetch.tag placeholder: tag patched after registration
        knode.prefetchTag(2, /*tag=*/0);
        knode.bind(done).halt();
    }
    KernelId k_node = ppf.kernels().add(knode.build());
    std::int32_t tag_node = ppf.registerTag(k_node);
    // Patch the self-referencing tag now that it is known.
    for (auto &in : ppf.kernels().mutableKernel(k_node).code) {
        if (in.op == Opcode::kPrefetchTag)
            in.imm = tag_node;
    }

    // on_header_prefetch: start the walk at the head pointer.
    KernelBuilder khdr("on_header_prefetch");
    {
        KernelBuilder::Label done = khdr.newLabel();
        khdr.vaddr(1)
            .ldLine(2, 1, 0) // header.head at offset 0
            .li(3, 0)
            .beq(2, 3, done)
            .prefetchTag(2, tag_node)
            .bind(done)
            .halt();
    }
    KernelId k_hdr = ppf.kernels().add(khdr.build());

    // on_keys_prefetch: hash the fetched key, chain into the header.
    KernelBuilder kpf("on_keys_prefetch");
    kpf.vaddr(1)
        .ldLine(2, 1, 0)
        .muli(2, 2, static_cast<std::int64_t>(kHashMult))
        .shri(2, 2, hashShift_)
        .andi(2, 2, static_cast<std::int64_t>(mask))
        .shli(2, 2, 4) // 16-byte headers
        .gread(3, g_hdr)
        .add(2, 2, 3)
        .prefetchCb(2, k_hdr)
        .halt();
    KernelId k_pf = ppf.kernels().add(kpf.build());

    KernelBuilder kld("on_keys_load");
    kld.vaddr(1)
        .gread(2, g_keys)
        .sub(1, 1, 2)
        .shri(1, 1, 3)
        .lookahead(3, 0)
        .add(1, 1, 3)
        .shli(1, 1, 3)
        .add(1, 1, 2)
        .prefetchCb(1, k_pf)
        .halt();
    KernelId k_ld = ppf.kernels().add(kld.build());

    FilterEntry fe;
    fe.name = "probekeys";
    fe.base = keys_base;
    fe.limit = keys_base + probes_ * 8;
    fe.onLoad = k_ld;
    fe.timeSource = true;
    fe.timedStart = true;
    ppf.addFilter(fe);

    FilterEntry pe;
    pe.name = "pool";
    pe.base = ga(pool_.data());
    pe.limit = ga(pool_.data()) + pool_.size() * sizeof(Node);
    pe.timedEnd = true;
    ppf.addFilter(pe);
}

std::vector<std::shared_ptr<LoopIR>>
HashJoinWorkload::buildIR()
{
    auto ir = std::make_shared<LoopIR>();
    const std::uint64_t mask = numBuckets_ - 1;

    IrNode *keys_b =
        ir->addArray("probekeys", ga(probeKeys_.data()), 8, probes_);
    IrNode *x = ir->indVar();

    IrNode *k = ir->load(ir->index(keys_b, x, 8), 8, "keys");
    auto hashOf = [&](IrNode *key) {
        return ir->bin(
            IrBin::kAnd,
            ir->bin(IrBin::kShr,
                    ir->bin(IrBin::kMul, key,
                            ir->invariant("hashmult",
                                          kHashMult)),
                    ir->cnst(hashShift_)),
            ir->invariant("mask", mask));
    };

    if (variant_ == Variant::kOpen) {
        IrNode *htab_b = ir->addArray("htab", ga(open_.data()),
                                      sizeof(Bucket), numBuckets_);
        // Body: bucket = htab[hash(k)].
        (void)ir->load(ir->index(htab_b, hashOf(k), sizeof(Bucket)), 8,
                       "htab");
        // swpf(&htab[hash(keys[x+dist])])
        IrNode *k2 = ir->loadForSwpf(
            ir->index(keys_b,
                      ir->bin(IrBin::kAdd, x, ir->cnst(kSwpfDist)), 8),
            8, "keys_pf");
        ir->swpf(ir->index(htab_b, hashOf(k2), sizeof(Bucket)));
        return {ir};
    }

    IrNode *hdr_b = ir->addArray("headers", ga(headers_.data()),
                                 sizeof(Header), numBuckets_);
    // Body: header load, then a pointer-chased list walk whose address
    // is a loop-carried phi — exactly what defeats the automatic passes.
    IrNode *hdr =
        ir->load(ir->index(hdr_b, hashOf(k), sizeof(Header)), 8, "header");
    (void)hdr;
    IrNode *l = ir->phi("l"); // current node pointer (control dependent)
    (void)ir->load(l, 8, "node");

    // Software prefetches: header, then the "first N" chain nodes via
    // nested dereferences (expressible without loops).
    IrNode *k2 = ir->loadForSwpf(
        ir->index(keys_b, ir->bin(IrBin::kAdd, x, ir->cnst(kSwpfDist)), 8),
        8, "keys_pf");
    IrNode *hdr_addr = ir->index(hdr_b, hashOf(k2), sizeof(Header));
    ir->swpf(hdr_addr);
    IrNode *chase = ir->loadForSwpf(hdr_addr, 8, "head_ptr");
    ir->swpf(chase); // first node
    for (unsigned d = 1; d < kConvertedDepth; ++d) {
        chase = ir->loadForSwpf(ir->bin(IrBin::kAdd, chase, ir->cnst(8)),
                                8, "next_ptr");
        ir->swpf(chase); // d+1'th node
    }
    return {ir};
}

std::uint64_t
HashJoinWorkload::checksum() const
{
    // Fold each shard's output slice in shard order; a serial run is
    // the single slice [0, matches) — the original checksum.
    std::uint64_t x = matches_;
    for (std::size_t s = 0; s < shardLo_.size(); ++s) {
        for (std::uint64_t i = 0; i < shardCount_[s]; ++i)
            x = x * 1099511628211ULL + outKeys_[shardLo_[s] + i];
    }
    return x;
}

} // namespace epf
