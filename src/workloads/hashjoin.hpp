/**
 * @file
 * HJ-2 / HJ-8: main-memory hash-join probe kernels (Blanas et al.).
 *
 * Pattern (Table 2): stride-hash-indirect; HJ-8 adds linked-list bucket
 * walks.  HJ-2 uses an open-addressed bucket array (at most a couple of
 * probes per lookup); HJ-8 uses chained buckets whose nodes are
 * scatter-allocated, so each probe walks a short pointer chain — the
 * paper's Figure 1 kernel.
 */

#ifndef EPF_WORKLOADS_HASHJOIN_HPP
#define EPF_WORKLOADS_HASHJOIN_HPP

#include <vector>

#include "workloads/workload.hpp"

namespace epf
{

/** The hash-join workload (both variants). */
class HashJoinWorkload : public Workload
{
  public:
    /** Bucket organisation. */
    enum class Variant
    {
        kOpen,    ///< HJ-2: open addressing, bucket array
        kChained, ///< HJ-8: linked-list buckets
    };

    HashJoinWorkload(Variant v, const WorkloadScale &scale = {});

    std::string
    name() const override
    {
        return variant_ == Variant::kOpen ? "HJ-2" : "HJ-8";
    }

    void setup(GuestMemory &mem, std::uint64_t seed) override;
    Generator<MicroOp> trace(bool with_swpf) override;
    /**
     * Shards partition the probe loop: shard s probes keys
     * [s*probes/n, (s+1)*probes/n) against the (read-only, built in
     * setup) hash table and writes its matches compactly into its own
     * slice of the output array.  Writes are disjoint between shards
     * and the match counter is commutative, so the final output — and
     * the checksum — do not depend on trace interleaving.
     */
    bool supportsSharding() const override { return true; }
    Generator<MicroOp> shardTrace(unsigned shard, unsigned shards,
                                  bool with_swpf) override;
    void programManual(ProgrammablePrefetcher &ppf) override;
    std::vector<std::shared_ptr<LoopIR>> buildIR() override;
    std::uint64_t checksum() const override;

    /** Matches found (functional validation). */
    std::uint64_t matches() const { return matches_; }

  private:
    /** HJ-2 bucket (16 B). */
    struct Bucket
    {
        std::uint64_t key = 0; ///< 0 = empty
        std::uint64_t payload = 0;
    };

    /** HJ-8 chain node (32 B, scatter-allocated).  Links are *guest*
     *  addresses (0 = null): the PPU kernels read them straight out of
     *  fetched lines, so they must live in the guest address space. */
    struct Node
    {
        std::uint64_t key = 0;
        Addr next = 0;
        std::uint64_t payload = 0;
        std::uint64_t pad = 0;
    };

    /** HJ-8 bucket header (16 B). */
    struct Header
    {
        Addr head = 0; ///< guest address of the first node (0 = empty)
        std::uint64_t count = 0;
    };

    std::uint64_t hashOpen(std::uint64_t k) const;
    std::uint64_t hashChained(std::uint64_t k) const;

    /** The node behind a guest chain address. */
    const Node &
    nodeAt(Addr a) const
    {
        return pool_[(a - poolBase_) / sizeof(Node)];
    }

    static constexpr std::uint64_t kHashMult = 0x9E3779B97F4A7C15ULL;
    static constexpr unsigned kSwpfDist = 24;
    /** Chain depth the converted pass prefetches ("first N"). */
    static constexpr unsigned kConvertedDepth = 2;

    Variant variant_;
    std::uint64_t buildTuples_;
    std::uint64_t probes_;
    std::uint64_t numBuckets_; ///< power of two
    unsigned hashShift_ = 0;

    /** The probe trace of one shard's key range [lo, hi). */
    Generator<MicroOp> probeTrace(unsigned shard, std::uint64_t lo,
                                  std::uint64_t hi, bool with_swpf);

    std::vector<std::uint64_t> probeKeys_;
    std::vector<Bucket> open_;
    std::vector<Header> headers_;
    std::vector<Node> pool_;
    Addr poolBase_ = 0; ///< guest base of pool_
    std::vector<std::uint64_t> outKeys_;
    std::uint64_t matches_ = 0;
    /** Per-shard output slice starts (probe-range starts) and match
     *  counts; one entry each in a serial run. */
    std::vector<std::uint64_t> shardLo_;
    std::vector<std::uint64_t> shardCount_;
};

} // namespace epf

#endif // EPF_WORKLOADS_HASHJOIN_HPP
