#include "workloads/pagerank.hpp"

#include "isa/builder.hpp"
#include "sim/rng.hpp"

namespace epf
{

PageRankWorkload::PageRankWorkload(const WorkloadScale &scale)
{
    nodes_ = static_cast<std::uint32_t>(scale.scaled(128 * 1024));
    numEdges_ = scale.scaled(768 * 1024);
}

void
PageRankWorkload::setup(GuestMemory &mem, std::uint64_t seed)
{
    attach(mem);
    Rng rng(seed);
    EdgeList edges = powerLawEdges(nodes_, numEdges_, rng);
    Csr g = buildCsr(nodes_, edges, /*symmetrise=*/false);
    rowStart_ = std::move(g.rowStart);
    edgeDst_ = std::move(g.dest);
    numEdges_ = edgeDst_.size();

    nodeData_.assign(nodes_, NodeData{});
    for (std::uint32_t u = 0; u < nodes_; ++u) {
        std::uint64_t deg = rowStart_[u + 1] - rowStart_[u];
        nodeData_[u].rank = 1.0 / nodes_;
        nodeData_[u].invOutDeg = deg > 0 ? 1.0 / static_cast<double>(deg)
                                         : 0.0;
    }
    newRank_.assign(nodes_, 0.0);

    mem.addRegion("pr.rowstart", rowStart_.data(),
                  rowStart_.size() * sizeof(std::uint64_t));
    mem.addRegion("pr.edgedst", edgeDst_.data(),
                  edgeDst_.size() * sizeof(std::uint64_t));
    mem.addRegion("pr.nodedata", nodeData_.data(),
                  nodeData_.size() * sizeof(NodeData));
    mem.addRegion("pr.newrank", newRank_.data(),
                  newRank_.size() * sizeof(double));
}

Generator<MicroOp>
PageRankWorkload::trace(bool with_swpf)
{
    (void)with_swpf; // software prefetch not possible (opaque iterators)
    OpFactory f;

    // One PageRank power iteration: in-rank gathered over all edges.
    for (std::uint32_t u = 0; u < nodes_; ++u) {
        ValueId v_re;
        co_yield f.load(ga(&rowStart_[u + 1]), 1, v_re);
        double sum = 0.0;
        const std::uint64_t end = rowStart_[u + 1];
        for (std::uint64_t e = rowStart_[u]; e < end; ++e) {
            ValueId v_d;
            co_yield f.load(ga(&edgeDst_[e]), 2, v_d);
            const std::uint64_t v = edgeDst_[e];
            ValueId v_nd;
            co_yield f.load(ga(&nodeData_[v]), 3, v_nd, v_d);
            sum += nodeData_[v].rank * nodeData_[v].invOutDeg;
            co_yield OpFactory::workDep(3, v_nd);
        }
        // Edge-loop exit mispredicts when the out-degree changes.
        const std::uint64_t deg = end - rowStart_[u];
        if (deg != prevDegree_) {
            prevDegree_ = deg;
            co_yield OpFactory::branchMiss(v_re);
        }
        newRank_[u] = 0.15 / nodes_ + 0.85 * sum;
        co_yield OpFactory::store(ga(&newRank_[u]), 4);
    }
}

void
PageRankWorkload::programManual(ProgrammablePrefetcher &ppf)
{
    const Addr dst_base = ga(edgeDst_.data());
    const Addr nd_base = ga(nodeData_.data());

    const unsigned g_dst = ppf.allocGlobal(dst_base);
    const unsigned g_nd = ppf.allocGlobal(nd_base);

    // on_edges_prefetch: the fetched word is a target vertex id.
    KernelBuilder kpf("on_edges_prefetch");
    kpf.vaddr(1)
        .ldLine(2, 1, 0)
        .shli(2, 2, 4) // 16-byte NodeData
        .gread(3, g_nd)
        .add(2, 2, 3)
        .prefetch(2)
        .halt();
    KernelId k_pf = ppf.kernels().add(kpf.build());

    KernelBuilder kld("on_edges_load");
    kld.vaddr(1)
        .gread(2, g_dst)
        .sub(1, 1, 2)
        .shri(1, 1, 3)
        .lookahead(3, 0)
        .add(1, 1, 3)
        .shli(1, 1, 3)
        .add(1, 1, 2)
        .prefetchCb(1, k_pf)
        .halt();
    KernelId k_ld = ppf.kernels().add(kld.build());

    FilterEntry fe;
    fe.name = "edgedst";
    fe.base = dst_base;
    fe.limit = dst_base + numEdges_ * 8;
    fe.onLoad = k_ld;
    fe.timeSource = true;
    fe.timedStart = true;
    ppf.addFilter(fe);

    FilterEntry ne;
    ne.name = "nodedata";
    ne.base = nd_base;
    ne.limit = nd_base + static_cast<std::uint64_t>(nodes_) *
                             sizeof(NodeData);
    ne.timedEnd = true;
    ppf.addFilter(ne);
}

std::vector<std::shared_ptr<LoopIR>>
PageRankWorkload::buildIR()
{
    auto ir = std::make_shared<LoopIR>();
    // BGL's templated iterators expose no addresses at the source level,
    // so no software prefetches exist and none can be inserted...
    ir->opaqueIterators = true;

    // ...but the IR the compiler sees still has the loads, so the pragma
    // pass can discover the stride-indirect pattern (Section 7.1).
    IrNode *dst_b =
        ir->addArray("edgedst", ga(edgeDst_.data()), 8, numEdges_);
    IrNode *nd_b = ir->addArray("nodedata", ga(nodeData_.data()),
                                sizeof(NodeData), nodes_);
    IrNode *e = ir->indVar();
    IrNode *d = ir->load(ir->index(dst_b, e, 8), 8, "edgedst");
    (void)ir->load(ir->index(nd_b, d, sizeof(NodeData)), 8, "nodedata");
    return {ir};
}

std::uint64_t
PageRankWorkload::checksum() const
{
    double s = 0.0;
    for (double v : newRank_)
        s += v;
    return static_cast<std::uint64_t>(s * 1e6);
}

} // namespace epf
