/**
 * @file
 * IntSort: the NAS Parallel Benchmarks integer-sort (IS) counting kernel.
 *
 * Pattern (Table 2): stride-indirect.  The ranking pass streams a large
 * key array and increments a bucket-count array indexed by each key; the
 * count array is much bigger than the LLC so the indirect increments
 * miss.  Two ranking iterations plus the prefix-sum pass are modelled.
 */

#ifndef EPF_WORKLOADS_INTSORT_HPP
#define EPF_WORKLOADS_INTSORT_HPP

#include <vector>

#include "workloads/workload.hpp"

namespace epf
{

/** The IntSort workload. */
class IntSortWorkload : public Workload
{
  public:
    explicit IntSortWorkload(const WorkloadScale &scale = {});

    std::string name() const override { return "IntSort"; }
    void setup(GuestMemory &mem, std::uint64_t seed) override;
    Generator<MicroOp> trace(bool with_swpf) override;
    void programManual(ProgrammablePrefetcher &ppf) override;
    std::vector<std::shared_ptr<LoopIR>> buildIR() override;
    std::uint64_t checksum() const override;

    static std::uint64_t reference(std::uint64_t keys, std::uint64_t range,
                                   unsigned iters, std::uint64_t seed);

  private:
    static constexpr unsigned kSwpfDist = 64; ///< keys ahead
    static constexpr unsigned kIters = 2;

    std::uint64_t numKeys_;
    std::uint64_t keyRange_; ///< bucket count (power of two)
    std::vector<std::uint32_t> keys_;
    std::vector<std::uint32_t> counts_;
};

} // namespace epf

#endif // EPF_WORKLOADS_INTSORT_HPP
