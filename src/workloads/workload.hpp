/**
 * @file
 * The benchmark interface.
 *
 * Each Table 2 workload provides:
 *  - setup(): allocate and initialise its real data structures, register
 *    them as guest memory regions;
 *  - trace(): the main-core micro-op stream (optionally with the
 *    software-prefetch variant's extra instructions);
 *  - programManual(): the hand-written PPU kernels of Section 5;
 *  - buildIR(): the loop IR the compiler passes of Section 6 consume;
 *  - checksum(): a functional result to validate against a reference.
 */

#ifndef EPF_WORKLOADS_WORKLOAD_HPP
#define EPF_WORKLOADS_WORKLOAD_HPP

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "compiler/ir.hpp"
#include "cpu/generator.hpp"
#include "cpu/micro_op.hpp"
#include "mem/guest_memory.hpp"
#include "ppf/ppf.hpp"

namespace epf
{

/** Scale factor for benchmark inputs (1.0 = the defaults in DESIGN.md). */
struct WorkloadScale
{
    double factor = 1.0;

    std::uint64_t
    scaled(std::uint64_t n) const
    {
        auto v = static_cast<std::uint64_t>(static_cast<double>(n) * factor);
        return v > 1 ? v : 1;
    }
};

/** Base class of all benchmarks. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Short name as used in the paper's figures. */
    virtual std::string name() const = 0;

    /**
     * Allocate data and register guest regions.  Implementations must
     * call attach(mem) first so ga() can translate host pointers.
     */
    virtual void setup(GuestMemory &mem, std::uint64_t seed) = 0;

    /**
     * The main-core trace.  @p with_swpf adds the software-prefetch
     * variant's extra address-generation work and prefetch instructions.
     */
    virtual Generator<MicroOp> trace(bool with_swpf) = 0;

    /**
     * True when the outer loop can be partitioned across cores.  A
     * shardable workload's writes must be disjoint or commutative
     * between shards, so the final data structures (and checksum) do
     * not depend on how the cores' traces interleave in simulated time.
     * Serial workloads run their whole trace on core 0.
     */
    virtual bool supportsSharding() const { return false; }

    /**
     * The trace of shard @p shard of @p shards (an outer-loop
     * partition).  shardTrace(0, 1, swpf) is the full trace.  The base
     * implementation only supports the single-shard case and forwards
     * to trace(); shardable workloads override it.
     */
    virtual Generator<MicroOp>
    shardTrace(unsigned shard, unsigned shards, bool with_swpf)
    {
        (void)shard;
        (void)shards;
        assert(shards == 1 && shard == 0 &&
               "workload does not support sharding");
        return trace(with_swpf);
    }

    /** Install the hand-written event kernels (Section 5). */
    virtual void programManual(ProgrammablePrefetcher &ppf) = 0;

    /** Loop IR for the compiler passes; one entry per annotated loop. */
    virtual std::vector<std::shared_ptr<LoopIR>> buildIR() = 0;

    /** False when software prefetches cannot be inserted (PageRank). */
    virtual bool supportsSoftware() const { return true; }

    /** Functional result for validation. */
    virtual std::uint64_t checksum() const = 0;

  protected:
    /** Remember the guest memory; call at the top of setup(). */
    void attach(GuestMemory &mem) { gmem_ = &mem; }

    /**
     * Guest address of a host object inside a registered region.  Trace
     * generation, manual kernels and the loop IR all describe *guest*
     * addresses — never host pointers, whose values depend on heap
     * layout and would make runs irreproducible.
     */
    Addr ga(const void *p) const { return gmem_->guestAddr(p); }

    GuestMemory *gmem_ = nullptr;
};

/** Registry entry used by benches and examples. */
std::vector<std::string> workloadNames();

/** Instantiate a workload by its paper name (nullptr if unknown). */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       const WorkloadScale &scale = {});

} // namespace epf

#endif // EPF_WORKLOADS_WORKLOAD_HPP
