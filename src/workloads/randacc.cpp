#include "workloads/randacc.hpp"

#include "isa/builder.hpp"
#include "sim/rng.hpp"

namespace epf
{

namespace
{

constexpr std::uint64_t kPoly = 7;

} // namespace

RandAccWorkload::RandAccWorkload(const WorkloadScale &scale)
{
    tableEntries_ = std::uint64_t{1} << 22; // 32 MB
    updates_ = scale.scaled(std::uint64_t{1} << 20);
    // Keep the batch count whole.
    updates_ = (updates_ / kBatch) * kBatch;
}

std::uint64_t
RandAccWorkload::lfsrNext(std::uint64_t r) const
{
    return (r << 1) ^ (static_cast<std::int64_t>(r) < 0 ? kPoly : 0);
}

void
RandAccWorkload::setup(GuestMemory &mem, std::uint64_t seed)
{
    attach(mem);
    seed_ = seed;
    table_.assign(tableEntries_, 0);
    for (std::uint64_t i = 0; i < tableEntries_; ++i)
        table_[i] = i;
    ran_.assign(kBatch, 0);
    for (unsigned j = 0; j < kBatch; ++j)
        ran_[j] = splitmix64(seed ^ (j + 1));

    mem.addRegion("randacc.table", table_.data(),
                  table_.size() * sizeof(std::uint64_t));
    mem.addRegion("randacc.ran", ran_.data(),
                  ran_.size() * sizeof(std::uint64_t));
}

Generator<MicroOp>
RandAccWorkload::trace(bool with_swpf)
{
    return shardTrace(0, 1, with_swpf);
}

Generator<MicroOp>
RandAccWorkload::shardTrace(unsigned shard, unsigned shards,
                            bool with_swpf)
{
    // Stream partition: contiguous [jlo, jhi) of the kBatch LFSR
    // streams.  With one shard this is [0, kBatch) — the original
    // serial trace, op for op.
    const unsigned jlo = shard * kBatch / shards;
    const unsigned jhi = (shard + 1) * kBatch / shards;
    const unsigned span = jhi - jlo;

    OpFactory f;
    const std::uint64_t mask = tableEntries_ - 1;
    const std::uint64_t batches = updates_ / kBatch;

    for (std::uint64_t b = 0; b < batches; ++b) {
        // Phase 1: advance this shard's LFSR streams (shift, sign test,
        // xor, plus loop bookkeeping — as in the HPCC source).  The
        // host-side update sits directly before its store's yield: the
        // value must become visible exactly when the store op is
        // fetched, which is the instant a trace replay patches the
        // recorded payload back (the PPU kernels read ran_[] while the
        // batch is in flight).
        for (unsigned j = jlo; j < jhi; ++j) {
            co_yield OpFactory::work(6);
            ran_[j] = lfsrNext(ran_[j]);
            co_yield OpFactory::store(ga(&ran_[j]), 0);
        }
        // Phase 2: apply the updates to the big table.
        for (unsigned j = jlo; j < jhi; ++j) {
            if (with_swpf) {
                // swpf(&table[ran[wrap(j+dist)] & mask]): an extra load
                // of the small array, the masking arithmetic, and the
                // prefetch instruction itself.  The lookahead wraps
                // within this shard's stream range ((j+dist)&127 for
                // the full-range serial trace).
                unsigned jj = jlo + (j - jlo + kSwpfDist) % span;
                ValueId v_r2;
                co_yield f.load(ga(&ran_[jj]), 1, v_r2);
                ValueId v_i2;
                co_yield f.workVal(1, v_i2, v_r2);
                co_yield OpFactory::swpf(ga(&table_[ran_[jj] & mask]),
                                         v_i2);
            }
            ValueId v_ran;
            co_yield f.load(ga(&ran_[j]), 2, v_ran);
            ValueId v_idx;
            co_yield f.workVal(2, v_idx, v_ran); // mask + address gen

            const std::uint64_t r = ran_[j];
            const std::uint64_t idx = r & mask;
            ValueId v_old;
            co_yield f.load(ga(&table_[idx]), 3, v_old, v_idx);
            table_[idx] ^= r;
            ValueId v_new;
            co_yield f.workVal(3, v_new, v_old); // xor + loop bookkeeping
            co_yield OpFactory::store(ga(&table_[idx]), 4, v_idx, v_new);
        }
    }
}

void
RandAccWorkload::programManual(ProgrammablePrefetcher &ppf)
{
    const Addr ran_base = ga(ran_.data());
    const Addr tab_base = ga(table_.data());
    const std::uint64_t mask = tableEntries_ - 1;

    const unsigned g_ran = ppf.allocGlobal(ran_base);
    const unsigned g_tab = ppf.allocGlobal(tab_base);
    const unsigned g_mask = ppf.allocGlobal(mask);

    // on_ran_prefetch: the fetched word is an LFSR value; hash it into
    // the table index and prefetch the table line.
    KernelBuilder kpf("on_ran_prefetch");
    kpf.vaddr(1)
        .ldLine(2, 1, 0)
        .gread(3, g_mask)
        .andr(2, 2, 3)
        .shli(2, 2, 3)
        .gread(4, g_tab)
        .add(2, 2, 4)
        .prefetch(2)
        .halt();
    KernelId k_pf = ppf.kernels().add(kpf.build());

    // on_ran_load: look `lookahead` elements ahead in the 128-entry ran
    // array (with wraparound, which only hand-written code knows about)
    // and prefetch it with a callback so the table fetch can chain.
    KernelBuilder kld("on_ran_load");
    kld.vaddr(1)
        .gread(2, g_ran)
        .sub(1, 1, 2)
        .shri(1, 1, 3)
        .lookahead(3, 0)
        .add(1, 1, 3)
        .andi(1, 1, kBatch - 1)
        .shli(1, 1, 3)
        .add(1, 1, 2)
        .prefetchCb(1, k_pf)
        .halt();
    KernelId k_ld = ppf.kernels().add(kld.build());

    FilterEntry fe;
    fe.name = "ran";
    fe.base = ran_base;
    fe.limit = ran_base + kBatch * 8;
    fe.onLoad = k_ld;
    fe.timeSource = true;
    fe.timedStart = true;
    ppf.addFilter(fe);

    FilterEntry te;
    te.name = "table";
    te.base = tab_base;
    te.limit = tab_base + tableEntries_ * 8;
    te.timedEnd = true;
    ppf.addFilter(te);
}

std::vector<std::shared_ptr<LoopIR>>
RandAccWorkload::buildIR()
{
    auto ir = std::make_shared<LoopIR>();
    const std::uint64_t mask = tableEntries_ - 1;

    IrNode *ran_b = ir->addArray("ran", ga(ran_.data()), 8, kBatch);
    IrNode *tab_b =
        ir->addArray("table", ga(table_.data()), 8, tableEntries_);
    IrNode *x = ir->indVar();

    // Loop body: r = ran[x]; table[r & mask] ^= r;
    IrNode *r = ir->load(ir->index(ran_b, x, 8), 8, "ran");
    IrNode *idx =
        ir->bin(IrBin::kAnd, r, ir->invariant("mask", mask));
    (void)ir->load(ir->index(tab_b, idx, 8), 8, "table");

    // swpf(&table[ran[(x+32) & 127] & mask]) — the wraparound lives in
    // the source expression, so conversion keeps it (the pragma pass
    // cannot discover it, as the paper notes).
    IrNode *xn = ir->bin(IrBin::kAnd,
                         ir->bin(IrBin::kAdd, x, ir->cnst(kSwpfDist)),
                         ir->cnst(kBatch - 1));
    IrNode *r2 =
        ir->loadForSwpf(ir->index(ran_b, xn, 8), 8, "ran_pf");
    IrNode *idx2 =
        ir->bin(IrBin::kAnd, r2, ir->invariant("mask", mask));
    ir->swpf(ir->index(tab_b, idx2, 8));

    return {ir};
}

std::uint64_t
RandAccWorkload::checksum() const
{
    std::uint64_t x = 0;
    for (std::uint64_t v : table_)
        x ^= v + (x << 1);
    return x;
}

std::uint64_t
RandAccWorkload::reference(std::uint64_t table_entries,
                           std::uint64_t updates, std::uint64_t seed)
{
    std::vector<std::uint64_t> table(table_entries);
    for (std::uint64_t i = 0; i < table_entries; ++i)
        table[i] = i;
    std::vector<std::uint64_t> ran(kBatch);
    for (unsigned j = 0; j < kBatch; ++j)
        ran[j] = splitmix64(seed ^ (j + 1));

    const std::uint64_t mask = table_entries - 1;
    const std::uint64_t batches = (updates / kBatch);
    for (std::uint64_t b = 0; b < batches; ++b) {
        for (unsigned j = 0; j < kBatch; ++j) {
            ran[j] = (ran[j] << 1) ^
                     (static_cast<std::int64_t>(ran[j]) < 0 ? kPoly : 0);
            table[ran[j] & mask] ^= ran[j];
        }
    }
    std::uint64_t x = 0;
    for (std::uint64_t v : table)
        x ^= v + (x << 1);
    return x;
}

} // namespace epf
