#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <stdexcept>

namespace epf
{

double
StatRegistry::get(const std::string &name, double fallback) const
{
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
}

StatRegistry::StatId
StatRegistry::intern(const std::string &name)
{
    auto [it, inserted] =
        internIndex_.emplace(name, static_cast<StatId>(handles_.size()));
    if (!inserted)
        return it->second;
    auto node = values_.emplace(name, 0.0).first;
    handles_.push_back(Handle{&node->first, &node->second});
    return it->second;
}

void
StatRegistry::setUnique(const std::string &name, double value)
{
    if (!values_.emplace(name, value).second)
        throw std::logic_error("duplicate statistic name: " + name);
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &[name, value] : values_)
        os << std::left << std::setw(48) << name << " " << value << "\n";
}

namespace
{

/** Linear-interpolated quantile of a sorted sample vector. */
double
quantileSorted(const std::vector<double> &xs, double q)
{
    if (xs.empty())
        return 0.0;
    if (xs.size() == 1)
        return xs.front();
    double pos = q * static_cast<double>(xs.size() - 1);
    std::size_t lo = static_cast<std::size_t>(pos);
    std::size_t hi = std::min(lo + 1, xs.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

} // namespace

SampleSummary
SampleSummary::of(std::vector<double> samples)
{
    SampleSummary s;
    if (samples.empty())
        return s;
    std::sort(samples.begin(), samples.end());
    s.min = samples.front();
    s.max = samples.back();
    s.q1 = quantileSorted(samples, 0.25);
    s.median = quantileSorted(samples, 0.5);
    s.q3 = quantileSorted(samples, 0.75);
    double sum = 0.0;
    for (double x : samples)
        sum += x;
    s.mean = sum / static_cast<double>(samples.size());
    return s;
}

double
geomean(const std::vector<double> &xs)
{
    double acc = 0.0;
    std::size_t n = 0;
    for (double x : xs) {
        if (x > 0.0) {
            acc += std::log(x);
            ++n;
        }
    }
    return n == 0 ? 0.0 : std::exp(acc / static_cast<double>(n));
}

} // namespace epf
