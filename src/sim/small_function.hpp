/**
 * @file
 * Small-buffer-optimized, move-only callable wrapper for the simulation
 * hot path.
 *
 * `std::function` heap-allocates any callable larger than two pointers,
 * and every scheduled event, demand completion and TLB callback in the
 * simulator is such a callable.  `SmallFunction` stores callables up to
 * `InlineBytes` in place (48 bytes covers every per-access closure in the
 * engine) and sends larger ones to a thread-local slab pool
 * (@ref CallbackSlab), so the steady-state event loop performs no heap
 * allocation at all.
 *
 * Differences from `std::function`, chosen for the hot path:
 *  - move-only (no copy, so no shared-state surprises and no virtual
 *    copy dispatch);
 *  - callables must be nothrow-move-constructible (they are relocated
 *    when the event heap grows);
 *  - invoking an empty SmallFunction is a programming error (asserted),
 *    not an exception.
 */

#ifndef EPF_SIM_SMALL_FUNCTION_HPP
#define EPF_SIM_SMALL_FUNCTION_HPP

#include <cassert>
#include <cstddef>
#include <cstring>
#include <type_traits>
#include <utility>

namespace epf
{

/** Default inline capacity, sized for the engine's per-access closures. */
inline constexpr std::size_t kSmallFunctionInline = 48;

namespace detail
{

/**
 * Thread-local slab pool for callables that overflow the inline buffer.
 *
 * Blocks are binned by size class and recycled through freelists, so the
 * steady state allocates nothing; each sweep worker thread owns its own
 * pool (the engine is single-threaded per EventQueue).  Under
 * AddressSanitizer the pool degrades to plain new/delete so lifetime bugs
 * keep their redzones.
 */
class CallbackSlab
{
  public:
    static void *allocate(std::size_t bytes);
    static void deallocate(void *p, std::size_t bytes) noexcept;
};

} // namespace detail

template <typename Sig, std::size_t InlineBytes = kSmallFunctionInline>
class SmallFunction;

template <typename R, typename... Args, std::size_t InlineBytes>
class SmallFunction<R(Args...), InlineBytes>
{
  public:
    SmallFunction() noexcept = default;
    SmallFunction(std::nullptr_t) noexcept {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallFunction> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    SmallFunction(F &&f)
    {
        init(std::forward<F>(f));
    }

    SmallFunction(SmallFunction &&other) noexcept { moveFrom(other); }

    SmallFunction &
    operator=(SmallFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    SmallFunction(const SmallFunction &) = delete;
    SmallFunction &operator=(const SmallFunction &) = delete;

    ~SmallFunction() { reset(); }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

    /** Invoke.  Const like std::function: the wrapper is const, the
     *  wrapped callable's state is its own business. */
    R
    operator()(Args... args) const
    {
        assert(ops_ != nullptr && "invoking an empty SmallFunction");
        return ops_->invoke(target(), std::forward<Args>(args)...);
    }

    void
    reset() noexcept
    {
        if (ops_ == nullptr)
            return;
        if (ops_->heap) {
            ops_->destroy(st_.ptr);
            detail::CallbackSlab::deallocate(st_.ptr, ops_->bytes);
        } else if (ops_->destroy != nullptr) {
            ops_->destroy(st_.buf);
        }
        ops_ = nullptr;
    }

  private:
    struct Ops
    {
        R (*invoke)(void *, Args...);
        /** Move-construct dst from src and destroy src.  Null means the
         *  callable is trivially relocatable (memcpy of @ref bytes). */
        void (*relocate)(void *dst, void *src) noexcept;
        /** Destroy the callable in place.  Null means trivial. */
        void (*destroy)(void *) noexcept;
        /** sizeof the callable (memcpy size for trivial relocation). */
        std::size_t bytes;
        /** True when the callable lives in a slab block. */
        bool heap;
    };

    template <typename Fn>
    static R
    invokeFn(void *obj, Args... args)
    {
        return (*static_cast<Fn *>(obj))(std::forward<Args>(args)...);
    }

    template <typename Fn>
    static void
    relocateFn(void *dst, void *src) noexcept
    {
        ::new (dst) Fn(std::move(*static_cast<Fn *>(src)));
        static_cast<Fn *>(src)->~Fn();
    }

    template <typename Fn>
    static void
    destroyFn(void *obj) noexcept
    {
        static_cast<Fn *>(obj)->~Fn();
    }

    template <typename Fn>
    static constexpr bool kFitsInline =
        sizeof(Fn) <= InlineBytes && alignof(Fn) <= alignof(void *);

    template <typename Fn>
    static inline const Ops inlineOps = {
        &invokeFn<Fn>,
        std::is_trivially_copyable_v<Fn> ? nullptr : &relocateFn<Fn>,
        std::is_trivially_destructible_v<Fn> ? nullptr : &destroyFn<Fn>,
        sizeof(Fn),
        false,
    };

    template <typename Fn>
    static inline const Ops heapOps = {
        &invokeFn<Fn>,
        nullptr, // heap-stored: relocation is a pointer move
        &destroyFn<Fn>,
        sizeof(Fn),
        true,
    };

    template <typename F>
    void
    init(F &&f)
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_nothrow_move_constructible_v<Fn>,
                      "callables must be nothrow-move-constructible: they "
                      "are relocated when the event heap grows");
        if constexpr (kFitsInline<Fn>) {
            if constexpr (std::is_empty_v<Fn>) {
                // A captureless callable constructs no state, leaving
                // its one storage byte formally uninitialized; give it
                // a defined value so the trivial-relocation memcpy is
                // clean under -Wuninitialized.
                st_.buf[0] = 0;
            }
            ::new (static_cast<void *>(st_.buf)) Fn(std::forward<F>(f));
            ops_ = &inlineOps<Fn>;
        } else {
            void *mem = detail::CallbackSlab::allocate(sizeof(Fn));
            ::new (mem) Fn(std::forward<F>(f));
            st_.ptr = mem;
            ops_ = &heapOps<Fn>;
        }
    }

    void
    moveFrom(SmallFunction &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_ == nullptr)
            return;
        if (ops_->heap)
            st_.ptr = other.st_.ptr;
        else if (ops_->relocate != nullptr)
            ops_->relocate(st_.buf, other.st_.buf);
        else
            std::memcpy(st_.buf, other.st_.buf, ops_->bytes);
        other.ops_ = nullptr;
    }

    void *
    target() const noexcept
    {
        return ops_->heap ? st_.ptr : static_cast<void *>(st_.buf);
    }

    union Storage
    {
        alignas(void *) unsigned char buf[InlineBytes];
        void *ptr;
    };

    const Ops *ops_ = nullptr;
    mutable Storage st_;
};

} // namespace epf

#endif // EPF_SIM_SMALL_FUNCTION_HPP
