/**
 * @file
 * Fundamental simulation types shared by every subsystem.
 *
 * The global tick is 62.5 ps (16 ticks per nanosecond).  This resolution
 * was chosen so that every clock the reproduction needs — the 3.2 GHz main
 * core, PPUs from 125 MHz to 4 GHz, and the 800 MHz DDR3 command clock —
 * has an exact integer period in ticks.
 */

#ifndef EPF_SIM_TYPES_HPP
#define EPF_SIM_TYPES_HPP

#include <cstdint>
#include <limits>

namespace epf
{

/** Simulated time, in global ticks of 62.5 ps. */
using Tick = std::uint64_t;

/** A count of cycles in some clock domain. */
using Cycles = std::uint64_t;

/** A guest (virtual or physical) memory address. */
using Addr = std::uint64_t;

/** Ticks per nanosecond of simulated time. */
constexpr Tick kTicksPerNs = 16;

/** Ticks per second of simulated time. */
constexpr Tick kTicksPerSec = kTicksPerNs * 1'000'000'000ULL;

/** Sentinel for "never". */
constexpr Tick kTickMax = std::numeric_limits<Tick>::max();

/** Cache line size in bytes (fixed across the hierarchy). */
constexpr unsigned kLineBytes = 64;

/** log2(kLineBytes). */
constexpr unsigned kLineShift = 6;

/** Page size in bytes. */
constexpr Addr kPageBytes = 4096;

/** log2(kPageBytes). */
constexpr unsigned kPageShift = 12;

/** Align an address down to its cache-line base. */
constexpr Addr
lineAlign(Addr a)
{
    return a & ~static_cast<Addr>(kLineBytes - 1);
}

/** Byte offset of an address within its cache line. */
constexpr unsigned
lineOffset(Addr a)
{
    return static_cast<unsigned>(a & (kLineBytes - 1));
}

/** Align an address down to its page base. */
constexpr Addr
pageAlign(Addr a)
{
    return a & ~static_cast<Addr>(kPageBytes - 1);
}

/** Virtual page number of an address. */
constexpr Addr
pageNumber(Addr a)
{
    return a >> kPageShift;
}

} // namespace epf

#endif // EPF_SIM_TYPES_HPP
