/**
 * @file
 * Growable circular FIFO used throughout the simulation hot path.
 *
 * `std::deque` allocates and frees a fixed-size chunk every few dozen
 * push/pop pairs when used as a queue, which shows up in every component
 * of the engine (DRAM bank queues, MSHR overflow, the prefetcher's
 * observation/request queues, the core's ROB).  `Ring` keeps one
 * power-of-two buffer and reuses it forever: after warm-up, pushing and
 * popping allocate nothing.
 *
 * Growth reallocates (moves elements), so pointers into a Ring are only
 * stable if the ring never grows past its reserved capacity — callers
 * that rely on this (the core's ROB) reserve their maximum occupancy up
 * front and then declare the dependency with forbidGrowth(), which turns
 * a later growth from silent reference invalidation into a debug-build
 * assertion failure.
 */

#ifndef EPF_SIM_RING_BUFFER_HPP
#define EPF_SIM_RING_BUFFER_HPP

#include <cassert>
#include <cstddef>
#include <iterator>
#include <memory>
#include <new>
#include <utility>

namespace epf
{

template <typename T>
class Ring
{
  public:
    Ring() = default;
    explicit Ring(std::size_t capacity) { reserve(capacity); }

    Ring(Ring &&other) noexcept
        : data_(other.data_), cap_(other.cap_), head_(other.head_),
          size_(other.size_)
    {
        other.data_ = nullptr;
        other.cap_ = other.head_ = other.size_ = 0;
    }

    Ring &
    operator=(Ring &&other) noexcept
    {
        if (this != &other) {
            destroyAll();
            data_ = other.data_;
            cap_ = other.cap_;
            head_ = other.head_;
            size_ = other.size_;
            other.data_ = nullptr;
            other.cap_ = other.head_ = other.size_ = 0;
        }
        return *this;
    }

    Ring(const Ring &) = delete;
    Ring &operator=(const Ring &) = delete;

    ~Ring() { destroyAll(); }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    std::size_t capacity() const { return cap_; }

    T &
    operator[](std::size_t i)
    {
        assert(i < size_);
        return data_[(head_ + i) & (cap_ - 1)];
    }

    const T &
    operator[](std::size_t i) const
    {
        assert(i < size_);
        return data_[(head_ + i) & (cap_ - 1)];
    }

    T &front() { return (*this)[0]; }
    const T &front() const { return (*this)[0]; }
    T &back() { return (*this)[size_ - 1]; }
    const T &back() const { return (*this)[size_ - 1]; }

    void
    push_back(T v)
    {
        emplace_back(std::move(v));
    }

    template <typename... A>
    T &
    emplace_back(A &&...args)
    {
        if (size_ == cap_)
            grow(cap_ == 0 ? kMinCapacity : cap_ * 2);
        T *slot = &data_[(head_ + size_) & (cap_ - 1)];
        ::new (static_cast<void *>(slot)) T(std::forward<A>(args)...);
        ++size_;
        return *slot;
    }

    void
    pop_front()
    {
        assert(size_ > 0);
        data_[head_].~T();
        head_ = (head_ + 1) & (cap_ - 1);
        --size_;
    }

    void
    clear()
    {
        while (size_ > 0)
            pop_front();
        head_ = 0;
    }

    /** Ensure capacity for at least @p n elements without reallocating. */
    void
    reserve(std::size_t n)
    {
        if (n > cap_)
            grow(roundUpPow2(n));
    }

    /**
     * Declare that references/pointers into this ring are held across
     * pushes (see the file comment): any growth past the reserved
     * capacity would invalidate them, so grow() asserts instead of
     * reallocating.  Call after reserve()ing the maximum occupancy.
     * Debug-build only; release builds keep the (documented) silent
     * reallocation.
     */
    void
    forbidGrowth(bool forbid = true)
    {
#ifndef NDEBUG
        growthForbidden_ = forbid;
#else
        (void)forbid;
#endif
    }

    // Minimal random-access iterator (enough for range-for and searches).
    template <typename RingT, typename Value>
    class Iter
    {
      public:
        using iterator_category = std::forward_iterator_tag;
        using value_type = Value;
        using difference_type = std::ptrdiff_t;
        using pointer = Value *;
        using reference = Value &;

        Iter(RingT *r, std::size_t i) : r_(r), i_(i) {}
        reference operator*() const { return (*r_)[i_]; }
        pointer operator->() const { return &(*r_)[i_]; }
        Iter &operator++() { ++i_; return *this; }
        Iter operator++(int) { Iter t = *this; ++i_; return t; }
        bool operator==(const Iter &o) const { return i_ == o.i_; }
        bool operator!=(const Iter &o) const { return i_ != o.i_; }

      private:
        RingT *r_;
        std::size_t i_;
    };

    using iterator = Iter<Ring, T>;
    using const_iterator = Iter<const Ring, const T>;

    iterator begin() { return iterator(this, 0); }
    iterator end() { return iterator(this, size_); }
    const_iterator begin() const { return const_iterator(this, 0); }
    const_iterator end() const { return const_iterator(this, size_); }

  private:
    static constexpr std::size_t kMinCapacity = 8;

    static std::size_t
    roundUpPow2(std::size_t n)
    {
        std::size_t c = kMinCapacity;
        while (c < n)
            c *= 2;
        return c;
    }

    void
    grow(std::size_t new_cap)
    {
#ifndef NDEBUG
        assert(!growthForbidden_ &&
               "Ring grew past reserved capacity with forbidGrowth() set: "
               "outstanding element references would be invalidated");
#endif
        T *nd = static_cast<T *>(
            ::operator new(new_cap * sizeof(T), std::align_val_t(alignof(T))));
        for (std::size_t i = 0; i < size_; ++i) {
            T &src = data_[(head_ + i) & (cap_ - 1)];
            ::new (static_cast<void *>(&nd[i])) T(std::move(src));
            src.~T();
        }
        if (data_ != nullptr)
            ::operator delete(data_, std::align_val_t(alignof(T)));
        data_ = nd;
        cap_ = new_cap;
        head_ = 0;
    }

    void
    destroyAll()
    {
        if (data_ == nullptr)
            return;
        clear();
        ::operator delete(data_, std::align_val_t(alignof(T)));
        data_ = nullptr;
        cap_ = 0;
    }

    T *data_ = nullptr;
    std::size_t cap_ = 0;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
#ifndef NDEBUG
    bool growthForbidden_ = false;
#endif
};

} // namespace epf

#endif // EPF_SIM_RING_BUFFER_HPP
