/**
 * @file
 * Minimal logging with severity levels.
 *
 * Debug tracing is compiled in but disabled by default; the harness can
 * raise the level for diagnosing a single run.  Hot paths should guard
 * trace calls with Log::traceEnabled().
 */

#ifndef EPF_SIM_LOG_HPP
#define EPF_SIM_LOG_HPP

#include <iostream>
#include <sstream>
#include <string>

namespace epf
{

/** Global log configuration. */
class Log
{
  public:
    enum Level
    {
        kError = 0,
        kWarn = 1,
        kInfo = 2,
        kTrace = 3,
    };

    /** Current verbosity (messages at or below this level print). */
    static Level &level()
    {
        static Level lvl = kWarn;
        return lvl;
    }

    static bool traceEnabled() { return level() >= kTrace; }

    /** Emit a message at @p lvl with a subsystem prefix. */
    static void
    write(Level lvl, const std::string &subsystem, const std::string &msg)
    {
        if (lvl > level())
            return;
        static const char *names[] = {"ERROR", "WARN", "INFO", "TRACE"};
        std::cerr << "[" << names[lvl] << "][" << subsystem << "] " << msg
                  << "\n";
    }
};

} // namespace epf

#endif // EPF_SIM_LOG_HPP
