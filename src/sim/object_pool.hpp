/**
 * @file
 * Freelist pool of reusable objects for the simulation hot path.
 *
 * Objects are heap-allocated once, then recycled: acquire() pops the
 * freelist (or mints a new object the first few times), release() pushes
 * back.  Pointers remain stable for the object's whole pooled lifetime,
 * which is what lets in-flight transactions (demand accesses waiting on
 * the TLB, retry loops waiting on MSHRs) be carried by a single 8-byte
 * pointer capture instead of a fat closure.
 *
 * Objects are returned to the freelist as-is — the next acquire()
 * overwrites the fields it uses.  Not thread-safe; each simulated
 * system owns its pools.
 */

#ifndef EPF_SIM_OBJECT_POOL_HPP
#define EPF_SIM_OBJECT_POOL_HPP

#include <cstddef>
#include <memory>
#include <vector>

namespace epf
{

template <typename T>
class ObjectPool
{
  public:
    /** Get a reusable object (fields hold stale values; overwrite them). */
    T *
    acquire()
    {
        if (free_.empty()) {
            all_.push_back(std::make_unique<T>());
            return all_.back().get();
        }
        T *p = free_.back();
        free_.pop_back();
        return p;
    }

    /** Return @p p to the pool.  @p p must come from this pool. */
    void
    release(T *p)
    {
        free_.push_back(p);
    }

    /** High-water mark: total objects ever minted. */
    std::size_t allocated() const { return all_.size(); }

  private:
    std::vector<std::unique_ptr<T>> all_;
    std::vector<T *> free_;
};

} // namespace epf

#endif // EPF_SIM_OBJECT_POOL_HPP
