#include "sim/fault.hpp"

#include <cstdlib>
#include <stdexcept>

namespace epf
{

const char *
faultSiteName(FaultSite site)
{
    switch (site) {
      case FaultSite::kObsDrop: return "obsDrop";
      case FaultSite::kObsDelay: return "obsDelay";
      case FaultSite::kObsOverflow: return "obsOverflow";
      case FaultSite::kReqDrop: return "reqDrop";
      case FaultSite::kReqDelay: return "reqDelay";
      case FaultSite::kReqCorruptIn: return "reqCorruptIn";
      case FaultSite::kReqCorruptOut: return "reqCorruptOut";
      case FaultSite::kReqOverflow: return "reqOverflow";
      case FaultSite::kTlbFault: return "tlbFault";
      case FaultSite::kDramJitter: return "dramJitter";
      case FaultSite::kEmitStorm: return "emitStorm";
      case FaultSite::kRunaway: return "runaway";
    }
    return "?";
}

FaultInjector::FaultInjector(const FaultConfig &cfg, std::uint64_t cell_seed)
    : cfg_(cfg), seed_(cell_seed)
{
    // Independent per-site streams, derived the way sweep seeds are
    // (splitmix64 chains): re-rating one site never shifts another's
    // schedule, and the whole set is a pure function of the cell seed.
    const std::uint64_t base = splitmix64(cell_seed ^ 0xFA017EC7ED5EEDULL);
    for (unsigned i = 0; i < kNumFaultSites; ++i)
        states_[i].rng = Rng(splitmix64(base ^ (i + 1)));
}

bool
FaultInjector::fire(FaultSite s)
{
    SiteState &st = states_[static_cast<unsigned>(s)];
    const FaultSpec &spec = cfg_.at(s);
    ++st.visits;

    bool hit = false;
    if (st.burstLeft > 0) {
        --st.burstLeft;
        hit = true;
    } else if (spec.enabled()) {
        if (spec.period > 0 && st.visits % spec.period == 0)
            hit = true;
        // The probability draw happens whenever prob is set, even after
        // a period hit, so the stream position stays a function of the
        // visit count alone.
        if (spec.prob > 0 && (st.rng.next() & 0xFFFF) < spec.prob)
            hit = true;
        if (hit && spec.burst > 1)
            st.burstLeft = spec.burst - 1;
    }

    if (hit)
        ++st.fired;
    return hit;
}

std::uint64_t
FaultInjector::draw(FaultSite s)
{
    return states_[static_cast<unsigned>(s)].rng.next();
}

Tick
FaultInjector::delayTicks(FaultSite s)
{
    const Tick max = cfg_.maxDelayTicks > 0 ? cfg_.maxDelayTicks : 1;
    return 1 + states_[static_cast<unsigned>(s)].rng.below(max);
}

Tick
FaultInjector::jitterTicks()
{
    const Tick max = cfg_.maxDramJitterTicks > 0 ? cfg_.maxDramJitterTicks : 1;
    return 1 +
           states_[static_cast<unsigned>(FaultSite::kDramJitter)].rng.below(
               max);
}

std::uint64_t
FaultInjector::totalFired() const
{
    std::uint64_t total = 0;
    for (const auto &st : states_)
        total += st.fired;
    return total;
}

FaultConfig
faultSchedule(unsigned idx)
{
    if (idx >= kNumFaultSchedules)
        throw std::invalid_argument("fault schedule index out of range: " +
                                    std::to_string(idx));
    FaultConfig cfg;
    cfg.enabled = true;
    switch (idx) {
      case 0: // observation loss
        cfg.at(FaultSite::kObsDrop) = {.prob = 8192};
        break;
      case 1: // late observations
        cfg.at(FaultSite::kObsDelay) = {.prob = 8192};
        break;
      case 2: // observation-queue overflow storms
        cfg.at(FaultSite::kObsOverflow) = {.prob = 4096, .burst = 8};
        break;
      case 3: // prefetch-request loss
        cfg.at(FaultSite::kReqDrop) = {.prob = 8192};
        break;
      case 4: // late prefetch requests
        cfg.at(FaultSite::kReqDelay) = {.prob = 8192};
        break;
      case 5: // wrong-target prefetches, both mapped and unmapped
        cfg.at(FaultSite::kReqCorruptIn) = {.prob = 4096};
        cfg.at(FaultSite::kReqCorruptOut) = {.prob = 4096};
        break;
      case 6: // request-queue overflow storms
        cfg.at(FaultSite::kReqOverflow) = {.prob = 4096, .burst = 8};
        break;
      case 7: // spurious prefetch TLB faults
        cfg.at(FaultSite::kTlbFault) = {.prob = 8192};
        break;
      case 8: // memory latency jitter (hits demand reads too)
        cfg.at(FaultSite::kDramJitter) = {.prob = 16384};
        break;
      case 9: // runaway kernels: emit storms
        cfg.at(FaultSite::kEmitStorm) = {.period = 7};
        cfg.stormFactor = 16;
        break;
      case 10: // runaway kernels: watchdog-budget exhaustion
        cfg.at(FaultSite::kRunaway) = {.period = 5};
        break;
      case 11: // everything at once, moderate rates
        cfg.at(FaultSite::kObsDrop) = {.prob = 2048};
        cfg.at(FaultSite::kObsDelay) = {.prob = 2048};
        cfg.at(FaultSite::kObsOverflow) = {.prob = 1024, .burst = 4};
        cfg.at(FaultSite::kReqDrop) = {.prob = 2048};
        cfg.at(FaultSite::kReqDelay) = {.prob = 2048};
        cfg.at(FaultSite::kReqCorruptIn) = {.prob = 1024};
        cfg.at(FaultSite::kReqCorruptOut) = {.prob = 1024};
        cfg.at(FaultSite::kReqOverflow) = {.prob = 1024};
        cfg.at(FaultSite::kTlbFault) = {.prob = 2048};
        cfg.at(FaultSite::kDramJitter) = {.prob = 4096};
        cfg.at(FaultSite::kEmitStorm) = {.period = 31};
        cfg.at(FaultSite::kRunaway) = {.period = 17};
        break;
      default:
        break;
    }
    return cfg;
}

namespace
{

FaultSite
siteFromName(const std::string &name)
{
    for (unsigned i = 0; i < kNumFaultSites; ++i) {
        const auto s = static_cast<FaultSite>(i);
        if (name == faultSiteName(s))
            return s;
    }
    throw std::invalid_argument("unknown fault site: '" + name + "'");
}

std::uint64_t
parseNumber(const std::string &text, const std::string &what)
{
    if (text.empty())
        throw std::invalid_argument("missing " + what +
                                    " in fault specification");
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (end != text.c_str() + text.size())
        throw std::invalid_argument("malformed " + what +
                                    " in fault specification: '" + text +
                                    "'");
    return v;
}

/** Parse one "site=trigger" clause into @p cfg. */
void
parseClause(FaultConfig &cfg, const std::string &clause)
{
    const std::size_t eq = clause.find('=');
    if (eq == std::string::npos)
        throw std::invalid_argument("fault clause has no '=': '" + clause +
                                    "'");
    const FaultSite site = siteFromName(clause.substr(0, eq));
    std::string trigger = clause.substr(eq + 1);

    FaultSpec spec;
    const std::size_t burst_at = trigger.find('x');
    if (burst_at != std::string::npos) {
        const std::uint64_t b =
            parseNumber(trigger.substr(burst_at + 1), "burst");
        if (b == 0 || b > 0xFFFF'FFFFULL)
            throw std::invalid_argument("fault burst out of range in '" +
                                        clause + "'");
        spec.burst = static_cast<std::uint32_t>(b);
        trigger.resize(burst_at);
    }

    if (!trigger.empty() && trigger[0] == '@') {
        spec.period = parseNumber(trigger.substr(1), "period");
        if (spec.period == 0)
            throw std::invalid_argument("fault period must be positive in '" +
                                        clause + "'");
    } else {
        const std::size_t slash = trigger.find('/');
        if (slash == std::string::npos)
            throw std::invalid_argument(
                "fault trigger must be 'num/den' or '@period' in '" + clause +
                "'");
        const std::uint64_t num =
            parseNumber(trigger.substr(0, slash), "probability numerator");
        const std::uint64_t den =
            parseNumber(trigger.substr(slash + 1), "probability denominator");
        if (den == 0 || num > den)
            throw std::invalid_argument(
                "fault probability must be in [0, 1] in '" + clause + "'");
        spec.prob = static_cast<std::uint32_t>((num * 65536) / den);
        if (spec.prob == 0 && num > 0)
            spec.prob = 1; // don't round a requested fault away entirely
    }

    cfg.at(site) = spec;
}

} // namespace

FaultConfig
parseFaultConfig(const std::string &spec)
{
    FaultConfig cfg;
    if (spec.empty())
        return cfg;

    // A bare integer selects a canonical schedule.
    bool all_digits = true;
    for (char c : spec)
        all_digits = all_digits && c >= '0' && c <= '9';
    if (all_digits) {
        const std::uint64_t idx = parseNumber(spec, "schedule index");
        if (idx >= kNumFaultSchedules)
            throw std::invalid_argument(
                "fault schedule index out of range (0.." +
                std::to_string(kNumFaultSchedules - 1) + "): '" + spec + "'");
        return faultSchedule(static_cast<unsigned>(idx));
    }

    cfg.enabled = true;
    std::size_t at = 0;
    while (at < spec.size()) {
        std::size_t comma = spec.find(',', at);
        if (comma == std::string::npos)
            comma = spec.size();
        parseClause(cfg, spec.substr(at, comma - at));
        at = comma + 1;
    }
    return cfg;
}

} // namespace epf
