/**
 * @file
 * Deterministic discrete-event queue.
 *
 * All timed behaviour in the simulator — cache latencies, DRAM bank
 * timing, core cycles, PPU execution — is expressed as events on a single
 * queue.  Events scheduled for the same tick execute in insertion order,
 * which keeps runs bit-for-bit reproducible.
 *
 * Engine internals (hot path, see bench/micro_components.cpp and
 * tools/bench_events.cpp):
 *
 *  - Callbacks are @ref SmallFunction, not std::function: closures up to
 *    48 bytes live inline in the slot pool, larger ones come from a
 *    thread-local slab, so scheduling never calls malloc in steady state.
 *  - Short-delay events — the bulk of the traffic: core ticks, cache hit
 *    latencies, arbitration slots, PPU dispatch — go into a calendar
 *    wheel of per-tick FIFO buckets covering the next kWheelTicks ticks,
 *    bypassing the heap entirely.  A bitmap scan finds the next occupied
 *    bucket in a handful of word operations.
 *  - Only far-future events (DRAM row conflicts, slow PPU clocks) use
 *    the implicit 4-ary heap of 24-byte keys {when, seq, slot}; sifts
 *    move keys only, never callbacks.  Callbacks sit in an indexed slot
 *    pool and move exactly twice: in at schedule, out at execution.
 *  - When time advances to a tick, every key at that tick is drained into
 *    a FIFO ring first; follow-on events scheduled *at the current tick*
 *    (the hierarchy's ubiquitous scheduleIn(0)) append to that ring in
 *    O(1).  run() drains the ring in one tight pass per tick — the
 *    batch-drain path — instead of re-entering runOne() per event.
 *  - Producers of N same-tick events (MSHR completion storms, PPF emit
 *    flushes) can enqueue ONE pooled vector of callbacks via
 *    scheduleBatch() instead of N closures.  The members run
 *    consecutively, which is observably identical to N consecutive
 *    schedule() calls (nothing can interleave between events enqueued
 *    back-to-back), but costs one slot and one key.
 *
 * Ordering guarantees (the drain contract):
 *
 *  1. Events at different ticks run in tick order.
 *  2. Events at the same tick run in schedule-call order, regardless of
 *     which structure (ring, wheel, heap) carried them.
 *  3. The members of a batch run consecutively, in vector order, at the
 *     batch's position in that tick's FIFO; events they schedule at the
 *     current tick run after the entire batch.
 */

#ifndef EPF_SIM_EVENT_QUEUE_HPP
#define EPF_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <vector>

#include "sim/ring_buffer.hpp"
#include "sim/small_function.hpp"
#include "sim/types.hpp"

namespace epf
{

/**
 * A time-ordered queue of callbacks.
 *
 * The queue owns simulated time: @ref now() advances only as events are
 * executed.  Scheduling in the past is a programming error and is clamped
 * to "now" (with an assert in debug builds).
 */
class EventQueue
{
  public:
    using Callback = SmallFunction<void()>;
    /** A pooled vector of callbacks delivered as one event. */
    using Batch = std::vector<Callback>;

    EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p fn to run at absolute tick @p when. */
    void schedule(Tick when, Callback fn);

    /** Schedule @p fn to run @p delay ticks from now. */
    void scheduleIn(Tick delay, Callback fn) { schedule(now_ + delay, std::move(fn)); }

    /**
     * Acquire an empty batch vector (pooled: capacity survives reuse).
     * Fill it and hand it to scheduleBatch(); an unused batch may also
     * be returned via scheduleBatch() with no members.
     */
    Batch takeBatch();

    /**
     * Schedule every callback in @p b to run @p delay ticks from now,
     * consecutively and in order, as a single queue entry.  Equivalent
     * to calling scheduleIn(delay, ...) once per member back-to-back,
     * but N callbacks cost one slot and one key.  The vector returns to
     * the pool after delivery.  An empty batch is returned to the pool
     * immediately; a single-member batch degenerates to scheduleIn().
     */
    void scheduleBatch(Tick delay, Batch b);

    /** True if no events remain. */
    bool empty() const
    {
        return current_.empty() && heap_.empty() && wheelCount_ == 0;
    }

    /** Tick of the next pending event (kTickMax if none). */
    Tick
    nextEventTick() const
    {
        if (!current_.empty())
            return now_;
        const Tick ht = heap_.empty() ? kTickMax : heap_[0].when;
        const Tick wt = nextWheelTick();
        return ht < wt ? ht : wt;
    }

    /**
     * Execute the single oldest event.
     * @return false if the queue was empty.
     */
    bool runOne();

    /** Run until the queue drains or @p limit events have executed. */
    void run(std::uint64_t limit = UINT64_MAX);

    /** Run events with time <= @p until (inclusive). */
    void runUntil(Tick until);

    /** Total events executed so far (for stats and runaway detection).
     *  Each member of a batch counts as one executed event. */
    std::uint64_t executed() const { return executed_; }

    /** Number of events currently pending (a batch counts once). */
    std::size_t
    pending() const
    {
        return current_.size() + heap_.size() + wheelCount_;
    }

  private:
    /** Heap/wheel key: ordering data plus the owning callback slot. */
    struct Key
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    /** Calendar-wheel horizon: delays in [1, kWheelTicks) take a bucket
     *  instead of the heap.  1024 ticks (64 ns) covers every periodic
     *  clock and cache latency in the machine; only DRAM tails and slow
     *  PPU completions reach the heap. */
    static constexpr std::size_t kWheelTicks = 1024;
    static constexpr std::size_t kWheelWords = kWheelTicks / 64;

    /** Strict ordering: earlier tick first, then insertion order. */
    static bool
    before(const Key &a, const Key &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    std::uint32_t takeSlot(Callback &&fn);
    void heapPush(Key k);
    Key heapPopTop();

    /** Next occupied wheel tick strictly after now_ (kTickMax if none). */
    Tick nextWheelTick() const;

    /**
     * Advance now_ to the next pending tick and drain every event at
     * that tick into the FIFO ring, merging wheel and heap sources in
     * seq order.  Returns false when nothing is pending.
     */
    bool advance();

    /** Pop the ring front and run it (the per-event drain step). */
    void execFront();

    /** Implicit 4-ary min-heap of keys (children of i: 4i+1 .. 4i+4). */
    std::vector<Key> heap_;
    /** Per-tick buckets for the near future; bucket = when % kWheelTicks.
     *  Each bucket holds at most one tick's events at a time (the
     *  horizon guarantees ticks kWheelTicks apart never coexist). */
    std::vector<std::vector<Key>> wheel_;
    /** Occupancy bitmap over wheel_ buckets. */
    std::uint64_t wheelBits_[kWheelWords] = {};
    std::size_t wheelCount_ = 0;
    /** Callback storage indexed by Key::slot. */
    std::vector<Callback> slots_;
    std::vector<std::uint32_t> freeSlots_;
    /** Slots waiting to run at the current tick, in FIFO order. */
    Ring<std::uint32_t> current_;
    /** Recycled batch vectors (capacity survives round trips). */
    std::vector<Batch> batchPool_;

    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace epf

#endif // EPF_SIM_EVENT_QUEUE_HPP
