/**
 * @file
 * Deterministic discrete-event queue.
 *
 * All timed behaviour in the simulator — cache latencies, DRAM bank
 * timing, core cycles, PPU execution — is expressed as events on a single
 * queue.  Events scheduled for the same tick execute in insertion order,
 * which keeps runs bit-for-bit reproducible.
 */

#ifndef EPF_SIM_EVENT_QUEUE_HPP
#define EPF_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hpp"

namespace epf
{

/**
 * A time-ordered queue of callbacks.
 *
 * The queue owns simulated time: @ref now() advances only as events are
 * executed.  Scheduling in the past is a programming error and is clamped
 * to "now" (with an assert in debug builds).
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p fn to run at absolute tick @p when. */
    void schedule(Tick when, Callback fn);

    /** Schedule @p fn to run @p delay ticks from now. */
    void scheduleIn(Tick delay, Callback fn) { schedule(now_ + delay, std::move(fn)); }

    /** True if no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Tick of the next pending event (kTickMax if none). */
    Tick nextEventTick() const { return heap_.empty() ? kTickMax : heap_.top().when; }

    /**
     * Execute the single oldest event.
     * @return false if the queue was empty.
     */
    bool runOne();

    /** Run until the queue drains or @p limit events have executed. */
    void run(std::uint64_t limit = UINT64_MAX);

    /** Run events with time <= @p until (inclusive). */
    void runUntil(Tick until);

    /** Total events executed so far (for stats and runaway detection). */
    std::uint64_t executed() const { return executed_; }

    /** Number of events currently pending. */
    std::size_t pending() const { return heap_.size(); }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback fn;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace epf

#endif // EPF_SIM_EVENT_QUEUE_HPP
