/**
 * @file
 * Deterministic discrete-event queue.
 *
 * All timed behaviour in the simulator — cache latencies, DRAM bank
 * timing, core cycles, PPU execution — is expressed as events on a single
 * queue.  Events scheduled for the same tick execute in insertion order,
 * which keeps runs bit-for-bit reproducible.
 *
 * Engine internals (hot path, see bench/micro_components.cpp):
 *
 *  - Callbacks are @ref SmallFunction, not std::function: closures up to
 *    48 bytes live inline in the slot pool, larger ones come from a
 *    thread-local slab, so scheduling never calls malloc in steady state.
 *  - The time order lives in an implicit 4-ary heap of 24-byte keys
 *    {when, seq, slot}; sifts move keys only, never callbacks.  Callbacks
 *    sit in an indexed slot pool and move exactly twice: in at schedule,
 *    out at execution.
 *  - When time advances to a tick, every key at that tick is drained into
 *    a FIFO ring first; follow-on events scheduled *at the current tick*
 *    (the hierarchy's ubiquitous scheduleIn(0)) append to that ring in
 *    O(1), bypassing the heap entirely while preserving FIFO order.
 */

#ifndef EPF_SIM_EVENT_QUEUE_HPP
#define EPF_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <vector>

#include "sim/ring_buffer.hpp"
#include "sim/small_function.hpp"
#include "sim/types.hpp"

namespace epf
{

/**
 * A time-ordered queue of callbacks.
 *
 * The queue owns simulated time: @ref now() advances only as events are
 * executed.  Scheduling in the past is a programming error and is clamped
 * to "now" (with an assert in debug builds).
 */
class EventQueue
{
  public:
    using Callback = SmallFunction<void()>;

    EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p fn to run at absolute tick @p when. */
    void schedule(Tick when, Callback fn);

    /** Schedule @p fn to run @p delay ticks from now. */
    void scheduleIn(Tick delay, Callback fn) { schedule(now_ + delay, std::move(fn)); }

    /** True if no events remain. */
    bool empty() const { return current_.empty() && heap_.empty(); }

    /** Tick of the next pending event (kTickMax if none). */
    Tick
    nextEventTick() const
    {
        if (!current_.empty())
            return now_;
        return heap_.empty() ? kTickMax : heap_[0].when;
    }

    /**
     * Execute the single oldest event.
     * @return false if the queue was empty.
     */
    bool runOne();

    /** Run until the queue drains or @p limit events have executed. */
    void run(std::uint64_t limit = UINT64_MAX);

    /** Run events with time <= @p until (inclusive). */
    void runUntil(Tick until);

    /** Total events executed so far (for stats and runaway detection). */
    std::uint64_t executed() const { return executed_; }

    /** Number of events currently pending. */
    std::size_t pending() const { return current_.size() + heap_.size(); }

  private:
    /** Heap key: ordering data plus the owning callback slot. */
    struct Key
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    /** Strict ordering: earlier tick first, then insertion order. */
    static bool
    before(const Key &a, const Key &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    std::uint32_t takeSlot(Callback &&fn);
    void heapPush(Key k);
    Key heapPopTop();

    /** Implicit 4-ary min-heap of keys (children of i: 4i+1 .. 4i+4). */
    std::vector<Key> heap_;
    /** Callback storage indexed by Key::slot. */
    std::vector<Callback> slots_;
    std::vector<std::uint32_t> freeSlots_;
    /** Slots waiting to run at the current tick, in FIFO order. */
    Ring<std::uint32_t> current_;

    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace epf

#endif // EPF_SIM_EVENT_QUEUE_HPP
