/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Workload generators and the page-table scatter function must be
 * reproducible across runs and platforms, so we use fixed xorshift /
 * splitmix implementations rather than std::mt19937 (whose distributions
 * are not portable).
 */

#ifndef EPF_SIM_RNG_HPP
#define EPF_SIM_RNG_HPP

#include <cstdint>

namespace epf
{

/** SplitMix64: good stateless mixing, used for hashing and PA scatter. */
constexpr std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

/** xorshift128+ generator: fast, deterministic, seedable. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x2545F4914F6CDD1DULL)
    {
        s0_ = splitmix64(seed);
        s1_ = splitmix64(s0_ ^ 0x9E3779B97F4A7C15ULL);
        if (s0_ == 0 && s1_ == 0)
            s1_ = 1;
    }

    /** Next 64 random bits. */
    std::uint64_t
    next()
    {
        std::uint64_t x = s0_;
        const std::uint64_t y = s1_;
        s0_ = y;
        x ^= x << 23;
        s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1_ + y;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Multiply-shift range reduction; bias is negligible for our use.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

  private:
    std::uint64_t s0_;
    std::uint64_t s1_;
};

} // namespace epf

#endif // EPF_SIM_RNG_HPP
