/**
 * @file
 * Clock domains.
 *
 * Components run in clock domains (main core 3.2 GHz, PPUs 1 GHz by
 * default, DRAM command clock 800 MHz).  A domain converts between cycles
 * and global ticks and snaps arbitrary ticks to its clock edges.
 */

#ifndef EPF_SIM_CLOCK_HPP
#define EPF_SIM_CLOCK_HPP

#include <cassert>
#include <cstdint>

#include "sim/types.hpp"

namespace epf
{

/** A fixed-frequency clock domain. */
class ClockDomain
{
  public:
    /** Construct a domain with the given period in ticks. */
    explicit ClockDomain(Tick period_ticks = 5) : period_(period_ticks)
    {
        assert(period_ > 0);
    }

    /** Make a domain from a frequency in MHz (must divide the tick grid). */
    static ClockDomain
    fromMHz(std::uint64_t mhz)
    {
        assert(mhz > 0);
        Tick period = kTicksPerSec / (mhz * 1'000'000ULL);
        assert(period * mhz * 1'000'000ULL == kTicksPerSec &&
               "frequency does not divide the 16 GHz tick grid");
        return ClockDomain(period);
    }

    /** Period of one cycle in ticks. */
    Tick period() const { return period_; }

    /** Frequency in Hz. */
    double frequencyHz() const { return static_cast<double>(kTicksPerSec) / period_; }

    /** Convert a cycle count to ticks. */
    Tick cyclesToTicks(Cycles c) const { return c * period_; }

    /** Convert ticks to whole cycles (floor). */
    Cycles ticksToCycles(Tick t) const { return t / period_; }

    /** The first clock edge at or after @p now. */
    Tick
    edgeAtOrAfter(Tick now) const
    {
        Tick rem = now % period_;
        return rem == 0 ? now : now + (period_ - rem);
    }

    /** The first clock edge strictly after @p now. */
    Tick edgeAfter(Tick now) const { return edgeAtOrAfter(now + 1); }

  private:
    Tick period_;
};

} // namespace epf

#endif // EPF_SIM_CLOCK_HPP
