#include "sim/small_function.hpp"

#include <array>
#include <cstdint>
#include <new>

// Detect ASan across GCC (__SANITIZE_ADDRESS__) and Clang (__has_feature).
#if defined(__SANITIZE_ADDRESS__)
#define EPF_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define EPF_ASAN 1
#endif
#endif

namespace epf::detail
{

namespace
{

/** Size classes for pooled blocks; anything larger is plain new/delete. */
constexpr std::array<std::size_t, 4> kClasses = {64, 128, 256, 512};

constexpr int
classOf(std::size_t bytes)
{
    for (std::size_t i = 0; i < kClasses.size(); ++i) {
        if (bytes <= kClasses[i])
            return static_cast<int>(i);
    }
    return -1;
}

/**
 * Per-thread freelists.  A freed block stores the next pointer in its own
 * first word.  The destructor runs at thread exit and returns every
 * pooled block to the system so sanitizers see no leaks.
 */
struct Arena
{
    std::array<void *, kClasses.size()> heads{};

    ~Arena()
    {
        for (std::size_t c = 0; c < heads.size(); ++c) {
            void *p = heads[c];
            while (p != nullptr) {
                void *next = *static_cast<void **>(p);
                ::operator delete(p);
                p = next;
            }
        }
    }
};

Arena &
arena()
{
    thread_local Arena a;
    return a;
}

} // namespace

void *
CallbackSlab::allocate(std::size_t bytes)
{
#if defined(EPF_ASAN)
    return ::operator new(bytes);
#else
    const int c = classOf(bytes);
    if (c < 0)
        return ::operator new(bytes);
    Arena &a = arena();
    void *p = a.heads[static_cast<std::size_t>(c)];
    if (p != nullptr) {
        a.heads[static_cast<std::size_t>(c)] = *static_cast<void **>(p);
        return p;
    }
    return ::operator new(kClasses[static_cast<std::size_t>(c)]);
#endif
}

void
CallbackSlab::deallocate(void *p, std::size_t bytes) noexcept
{
#if defined(EPF_ASAN)
    (void)bytes;
    ::operator delete(p);
#else
    const int c = classOf(bytes);
    if (c < 0) {
        ::operator delete(p);
        return;
    }
    Arena &a = arena();
    *static_cast<void **>(p) = a.heads[static_cast<std::size_t>(c)];
    a.heads[static_cast<std::size_t>(c)] = p;
#endif
}

} // namespace epf::detail
