/**
 * @file
 * Deterministic fault injection.
 *
 * The paper's safety argument is that every prefetch the PPF issues is a
 * *hint*: dropping, delaying, corrupting or multiplying one may cost
 * cycles but can never change architectural results.  This subsystem
 * exercises that claim adversarially.  A FaultInjector owns one seeded
 * RNG stream per injection site; components wired with an injector ask
 * it `fire(site)` at each eligible instant and apply the fault when it
 * says yes.  Because (a) every stream is derived from the cell seed the
 * same way sweep seeds are and (b) all queries happen in deterministic
 * simulation order, a fault *schedule* is a pure function of
 * (seed, config): bit-reproducible across host thread counts, repeated
 * runs, and trace capture/replay.
 *
 * The proof layer (tests/fault_parity_test.cpp, tier 2) runs a matrix
 * of schedules over every workload and asserts the architectural
 * checksum and instruction count are byte-identical to the fault-free
 * run — only timing and traffic stats may move.
 */

#ifndef EPF_SIM_FAULT_HPP
#define EPF_SIM_FAULT_HPP

#include <array>
#include <cstdint>
#include <string>

#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace epf
{

/** Every place a fault can be injected. */
enum class FaultSite : unsigned
{
    kObsDrop,        ///< discard a PPF observation before it queues
    kObsDelay,       ///< deliver a PPF observation late
    kObsOverflow,    ///< evict the oldest queued observation (capacity storm)
    kReqDrop,        ///< discard an emitted prefetch request
    kReqDelay,       ///< queue an emitted prefetch request late
    kReqCorruptIn,   ///< redirect a prefetch to a random mapped address
    kReqCorruptOut,  ///< redirect a prefetch to an unmapped address
    kReqOverflow,    ///< evict the oldest queued prefetch request
    kTlbFault,       ///< spuriously fail a prefetch TLB translation
    kDramJitter,     ///< add latency jitter to a DRAM access
    kEmitStorm,      ///< replicate an event's emit list (runaway kernel)
    kRunaway,        ///< charge a kernel the full watchdog step budget
};

constexpr unsigned kNumFaultSites = 12;

/** Display/parse name of @p site ("obsDrop", "dramJitter", ...). */
const char *faultSiteName(FaultSite site);

/** Per-site firing schedule.  A site is eligible once per visit (one
 *  observation, one emitted request, one DRAM access, ...).  Either
 *  trigger form may be used; both may be combined:
 *   - prob:   fire with probability prob / 65536 per visit;
 *   - period: fire deterministically on every period-th visit.
 *  Each trigger extends to `burst` consecutive visits. */
struct FaultSpec
{
    std::uint32_t prob = 0; ///< per-visit probability, /65536
    std::uint64_t period = 0;
    std::uint32_t burst = 1;

    bool enabled() const { return prob > 0 || period > 0; }
};

/** Full fault-injection configuration of one run. */
struct FaultConfig
{
    /** Master switch: when false no component consults the injector and
     *  the machine is bit-identical to a build without this subsystem. */
    bool enabled = false;

    std::array<FaultSpec, kNumFaultSites> site{};

    /** Upper bound (ticks) on injected observation/request delays. */
    Tick maxDelayTicks = 2000;
    /** Upper bound (ticks) on injected DRAM latency jitter. */
    Tick maxDramJitterTicks = 500;
    /** Emit-list replication factor of a kEmitStorm injection. */
    unsigned stormFactor = 8;

    FaultSpec &at(FaultSite s) { return site[static_cast<unsigned>(s)]; }
    const FaultSpec &
    at(FaultSite s) const
    {
        return site[static_cast<unsigned>(s)];
    }

    /** True when the master switch is on and at least one site fires. */
    bool
    anySite() const
    {
        if (!enabled)
            return false;
        for (const auto &s : site)
            if (s.enabled())
                return true;
        return false;
    }
};

/**
 * Draws the per-site fault schedule of one run.
 *
 * One instance is shared by every component of a run (the simulation of
 * a cell is single-threaded, so a single instance is deterministic even
 * at cores > 1).  Sites draw from independent RNG streams: enabling or
 * re-rating one site never perturbs another site's schedule.
 */
class FaultInjector
{
  public:
    FaultInjector(const FaultConfig &cfg, std::uint64_t cell_seed);

    /** One eligible instant at @p s; true means inject now. */
    bool fire(FaultSite s);

    /** Auxiliary random bits for a fault's magnitude (corrupt target,
     *  jitter amount).  Drawn from the same per-site stream, so the
     *  schedule stays a pure function of (seed, config). */
    std::uint64_t draw(FaultSite s);

    /** Injected delay in [1, maxDelayTicks] for @p s. */
    Tick delayTicks(FaultSite s);

    /** Injected DRAM jitter in [1, maxDramJitterTicks]. */
    Tick jitterTicks();

    /** Times @p s actually injected so far. */
    std::uint64_t
    fired(FaultSite s) const
    {
        return states_[static_cast<unsigned>(s)].fired;
    }

    /** Eligible visits seen at @p s so far. */
    std::uint64_t
    visits(FaultSite s) const
    {
        return states_[static_cast<unsigned>(s)].visits;
    }

    /** Total injections across all sites. */
    std::uint64_t totalFired() const;

    const FaultConfig &config() const { return cfg_; }
    std::uint64_t seed() const { return seed_; }

  private:
    struct SiteState
    {
        Rng rng{0};
        std::uint64_t visits = 0;
        std::uint64_t fired = 0;
        std::uint32_t burstLeft = 0;
    };

    FaultConfig cfg_;
    std::uint64_t seed_;
    std::array<SiteState, kNumFaultSites> states_;
};

/** Number of canonical schedules faultSchedule() defines. */
constexpr unsigned kNumFaultSchedules = 12;

/**
 * Canonical fault schedule @p idx (0 .. kNumFaultSchedules-1): the
 * fixed set the FaultParity matrix runs and `EPF_FAULTS=<idx>`
 * selects.  Each schedule stresses one failure family; the last one
 * layers every site at moderate rates.
 */
FaultConfig faultSchedule(unsigned idx);

/**
 * Parse an EPF_FAULTS-style specification:
 *   ""            -> disabled;
 *   "<n>"         -> faultSchedule(n);
 *   "site=..."    -> comma-separated site triggers, e.g.
 *                    "obsDrop=1/8,dramJitter=@64,emitStorm=@16x4"
 *                    (probability num/den, @period, optional xburst).
 * Throws std::invalid_argument on malformed input.
 */
FaultConfig parseFaultConfig(const std::string &spec);

} // namespace epf

#endif // EPF_SIM_FAULT_HPP
