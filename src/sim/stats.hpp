/**
 * @file
 * Lightweight statistics collection.
 *
 * Hot paths increment plain counters owned by each component; at the end
 * of a run components publish those counters into a StatRegistry, which
 * the harness prints or serialises.  This keeps the simulation loop free
 * of string lookups.
 */

#ifndef EPF_SIM_STATS_HPP
#define EPF_SIM_STATS_HPP

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace epf
{

/** A named bag of scalar statistics gathered after a run. */
class StatRegistry
{
  public:
    /**
     * Integer handle to an interned statistic.  Handles pin the name
     * lookup once; set/add/get by handle are a vector index plus a
     * pointer write, so loops that touch counters per event (batched
     * drain paths, benches) never pay the std::map string compare.
     * Handles stay valid for the registry's lifetime.
     */
    using StatId = std::uint32_t;

    /** Set (or overwrite) a scalar statistic. */
    void set(const std::string &name, double value) { values_[name] = value; }

    /**
     * Intern @p name: create the statistic (value 0.0) if absent and
     * return a stable integer handle to it.  Interning the same name
     * twice returns the same handle.
     */
    StatId intern(const std::string &name);

    /** Set the interned statistic @p id. */
    void set(StatId id, double value) { *handles_[id].value = value; }

    /** Add @p delta to the interned statistic @p id. */
    void add(StatId id, double delta) { *handles_[id].value += delta; }

    /** Read the interned statistic @p id. */
    double get(StatId id) const { return *handles_[id].value; }

    /** Name of the interned statistic @p id. */
    const std::string &name(StatId id) const { return *handles_[id].name; }

    /**
     * Publish a statistic that must not already exist.  Throws
     * std::logic_error on a duplicate: two components publishing the
     * same counter name (e.g. two L1s both claiming "l1.loads") is an
     * aliasing bug that silent overwriting would hide.
     */
    void setUnique(const std::string &name, double value);

    /** Fetch a statistic; returns @p fallback when absent. */
    double get(const std::string &name, double fallback = 0.0) const;

    /** True if the statistic has been published. */
    bool has(const std::string &name) const { return values_.count(name) != 0; }

    /** All statistics in name order. */
    const std::map<std::string, double> &all() const { return values_; }

    /** Pretty-print every statistic, one per line. */
    void dump(std::ostream &os) const;

  private:
    /** Interned pointers into values_ (std::map nodes never move). */
    struct Handle
    {
        const std::string *name;
        double *value;
    };

    std::map<std::string, double> values_;
    std::vector<Handle> handles_;
    std::map<std::string, StatId> internIndex_;
};

/**
 * Summary statistics of a sample set (used for the Fig. 10 box plot of
 * per-PPU activity factors).
 */
struct SampleSummary
{
    double min = 0.0;
    double q1 = 0.0;
    double median = 0.0;
    double q3 = 0.0;
    double max = 0.0;
    double mean = 0.0;

    /** Compute the five-number summary + mean of @p samples. */
    static SampleSummary of(std::vector<double> samples);
};

/** Geometric mean of a sample set (ignores non-positive entries). */
double geomean(const std::vector<double> &xs);

} // namespace epf

#endif // EPF_SIM_STATS_HPP
