/**
 * @file
 * Lightweight statistics collection.
 *
 * Hot paths increment plain counters owned by each component; at the end
 * of a run components publish those counters into a StatRegistry, which
 * the harness prints or serialises.  This keeps the simulation loop free
 * of string lookups.
 */

#ifndef EPF_SIM_STATS_HPP
#define EPF_SIM_STATS_HPP

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace epf
{

/** A named bag of scalar statistics gathered after a run. */
class StatRegistry
{
  public:
    /** Set (or overwrite) a scalar statistic. */
    void set(const std::string &name, double value) { values_[name] = value; }

    /**
     * Publish a statistic that must not already exist.  Throws
     * std::logic_error on a duplicate: two components publishing the
     * same counter name (e.g. two L1s both claiming "l1.loads") is an
     * aliasing bug that silent overwriting would hide.
     */
    void setUnique(const std::string &name, double value);

    /** Fetch a statistic; returns @p fallback when absent. */
    double get(const std::string &name, double fallback = 0.0) const;

    /** True if the statistic has been published. */
    bool has(const std::string &name) const { return values_.count(name) != 0; }

    /** All statistics in name order. */
    const std::map<std::string, double> &all() const { return values_; }

    /** Pretty-print every statistic, one per line. */
    void dump(std::ostream &os) const;

  private:
    std::map<std::string, double> values_;
};

/**
 * Summary statistics of a sample set (used for the Fig. 10 box plot of
 * per-PPU activity factors).
 */
struct SampleSummary
{
    double min = 0.0;
    double q1 = 0.0;
    double median = 0.0;
    double q3 = 0.0;
    double max = 0.0;
    double mean = 0.0;

    /** Compute the five-number summary + mean of @p samples. */
    static SampleSummary of(std::vector<double> samples);
};

/** Geometric mean of a sample set (ignores non-positive entries). */
double geomean(const std::vector<double> &xs);

} // namespace epf

#endif // EPF_SIM_STATS_HPP
