#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace epf
{

void
EventQueue::schedule(Tick when, Callback fn)
{
    assert(fn);
    if (when < now_)
        when = now_; // clamp: events may not run in the past
    heap_.push(Entry{when, seq_++, std::move(fn)});
}

bool
EventQueue::runOne()
{
    if (heap_.empty())
        return false;
    // priority_queue::top() returns const&; move out via const_cast is the
    // standard idiom for pop-with-move on a binary heap of move-only work.
    Entry e = std::move(const_cast<Entry &>(heap_.top()));
    heap_.pop();
    assert(e.when >= now_);
    now_ = e.when;
    ++executed_;
    e.fn();
    return true;
}

void
EventQueue::run(std::uint64_t limit)
{
    while (limit-- > 0 && runOne()) {
    }
}

void
EventQueue::runUntil(Tick until)
{
    while (!heap_.empty() && heap_.top().when <= until)
        runOne();
    if (now_ < until)
        now_ = until;
}

} // namespace epf
