#include "sim/event_queue.hpp"

#include <bit>
#include <cassert>
#include <utility>

namespace epf
{

namespace
{
/** Warm-start capacities: sized so typical runs never grow mid-sim. */
constexpr std::size_t kInitialSlots = 1024;
constexpr std::size_t kInitialRing = 256;
} // namespace

EventQueue::EventQueue()
{
    heap_.reserve(kInitialSlots);
    slots_.reserve(kInitialSlots);
    freeSlots_.reserve(kInitialSlots);
    current_.reserve(kInitialRing);
    wheel_.resize(kWheelTicks);
}

std::uint32_t
EventQueue::takeSlot(Callback &&fn)
{
    if (!freeSlots_.empty()) {
        const std::uint32_t s = freeSlots_.back();
        freeSlots_.pop_back();
        slots_[s] = std::move(fn);
        return s;
    }
    slots_.push_back(std::move(fn));
    return static_cast<std::uint32_t>(slots_.size() - 1);
}

void
EventQueue::schedule(Tick when, Callback fn)
{
    assert(fn);
    if (when <= now_) {
        // Clamp: events may not run in the past.  Same-tick events join
        // the FIFO drain ring directly — everything already drained (or
        // running) carries a smaller seq, so FIFO order is preserved
        // without touching the heap.
        current_.push_back(takeSlot(std::move(fn)));
        ++seq_;
        return;
    }
    if (when - now_ < kWheelTicks) {
        // Near future: append to the tick's wheel bucket.  Appends are
        // in seq order by construction, and the horizon guarantees the
        // bucket holds no other tick's events.
        const std::size_t b =
            static_cast<std::size_t>(when & (kWheelTicks - 1));
        std::vector<Key> &bucket = wheel_[b];
        assert(bucket.empty() || bucket.back().when == when);
        bucket.push_back(Key{when, seq_++, takeSlot(std::move(fn))});
        wheelBits_[b >> 6] |= 1ULL << (b & 63);
        ++wheelCount_;
        return;
    }
    heapPush(Key{when, seq_++, takeSlot(std::move(fn))});
}

EventQueue::Batch
EventQueue::takeBatch()
{
    if (batchPool_.empty())
        return Batch{};
    Batch b = std::move(batchPool_.back());
    batchPool_.pop_back();
    return b;
}

void
EventQueue::scheduleBatch(Tick delay, Batch b)
{
    if (b.empty()) {
        batchPool_.push_back(std::move(b));
        return;
    }
    if (b.size() == 1) {
        Callback fn = std::move(b.front());
        b.clear();
        batchPool_.push_back(std::move(b));
        scheduleIn(delay, std::move(fn));
        return;
    }
    // One slot carries the whole vector; members run consecutively and
    // each counts as an executed event (the carrier's own increment in
    // the drain covers the first member).
    scheduleIn(delay, [this, b = std::move(b)]() mutable {
        executed_ += b.size() - 1;
        for (Callback &fn : b) {
            Callback f = std::move(fn);
            f();
        }
        b.clear();
        batchPool_.push_back(std::move(b));
    });
}

void
EventQueue::heapPush(Key k)
{
    // Hole percolation: shift parents down, place the key once.
    std::size_t i = heap_.size();
    heap_.push_back(k);
    while (i > 0) {
        const std::size_t parent = (i - 1) / 4;
        if (!before(k, heap_[parent]))
            break;
        heap_[i] = heap_[parent];
        i = parent;
    }
    heap_[i] = k;
}

EventQueue::Key
EventQueue::heapPopTop()
{
    assert(!heap_.empty());
    const Key top = heap_[0];
    const Key last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
        // Sift the former last element down from the root.
        std::size_t i = 0;
        const std::size_t n = heap_.size();
        for (;;) {
            const std::size_t first_child = 4 * i + 1;
            if (first_child >= n)
                break;
            std::size_t best = first_child;
            const std::size_t last_child =
                first_child + 4 <= n ? first_child + 4 : n;
            for (std::size_t c = first_child + 1; c < last_child; ++c) {
                if (before(heap_[c], heap_[best]))
                    best = c;
            }
            if (!before(heap_[best], last))
                break;
            heap_[i] = heap_[best];
            i = best;
        }
        heap_[i] = last;
    }
    return top;
}

Tick
EventQueue::nextWheelTick() const
{
    if (wheelCount_ == 0)
        return kTickMax;
    // Scan the occupancy bitmap from the bucket of now_+1, wrapping.
    // Bucket indices met in scan order correspond to strictly
    // increasing ticks in (now_, now_ + kWheelTicks), so the first set
    // bit is the nearest occupied tick.
    const std::size_t start =
        static_cast<std::size_t>((now_ + 1) & (kWheelTicks - 1));
    std::size_t w = start >> 6;
    std::uint64_t word = wheelBits_[w] & (~0ULL << (start & 63));
    for (std::size_t i = 0; i <= kWheelWords; ++i) {
        if (word != 0) {
            const std::size_t b =
                (w << 6) | static_cast<std::size_t>(std::countr_zero(word));
            return now_ + 1 + ((b - start) & (kWheelTicks - 1));
        }
        w = (w + 1) & (kWheelWords - 1);
        word = wheelBits_[w];
    }
    assert(false && "wheelCount_ > 0 but no bucket bit set");
    return kTickMax;
}

bool
EventQueue::advance()
{
    const Tick ht = heap_.empty() ? kTickMax : heap_[0].when;
    const Tick wt = nextWheelTick();
    if (ht == kTickMax && wt == kTickMax)
        return false;
    const Tick t = ht < wt ? ht : wt;
    assert(t > now_);
    now_ = t;

    if (wt == t) {
        const std::size_t b = static_cast<std::size_t>(t & (kWheelTicks - 1));
        std::vector<Key> &bucket = wheel_[b];
        wheelBits_[b >> 6] &= ~(1ULL << (b & 63));
        wheelCount_ -= bucket.size();
        if (ht == t) {
            // Both sources hold events at t.  Every heap key at t was
            // scheduled at least kWheelTicks early — before any wheel
            // key for t could have been created — so all heap seqs
            // precede all bucket seqs: drain heap first.
            do {
                current_.push_back(heapPopTop().slot);
            } while (!heap_.empty() && heap_[0].when == t);
        }
        for (const Key &k : bucket)
            current_.push_back(k.slot);
        bucket.clear();
    } else {
        do {
            current_.push_back(heapPopTop().slot);
        } while (!heap_.empty() && heap_[0].when == t);
    }
    return true;
}

void
EventQueue::execFront()
{
    const std::uint32_t s = current_.front();
    current_.pop_front();
    // Move the callback out before invoking: the callback may schedule,
    // which can grow or reuse the slot pool.
    Callback fn = std::move(slots_[s]);
    freeSlots_.push_back(s);
    ++executed_;
    fn();
}

bool
EventQueue::runOne()
{
    if (current_.empty() && !advance())
        return false;
    execFront();
    return true;
}

void
EventQueue::run(std::uint64_t limit)
{
    // Batch drain: one time-advance per tick, then the whole FIFO ring
    // in a tight loop (callbacks appending same-tick events extend the
    // same pass).
    while (limit > 0) {
        if (current_.empty() && !advance())
            return;
        do {
            execFront();
        } while (--limit > 0 && !current_.empty());
    }
}

void
EventQueue::runUntil(Tick until)
{
    while (nextEventTick() <= until) {
        if (current_.empty())
            (void)advance();
        do {
            execFront();
        } while (!current_.empty());
    }
    if (now_ < until)
        now_ = until;
}

} // namespace epf
