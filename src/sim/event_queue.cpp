#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace epf
{

namespace
{
/** Warm-start capacities: sized so typical runs never grow mid-sim. */
constexpr std::size_t kInitialSlots = 1024;
constexpr std::size_t kInitialRing = 64;
} // namespace

EventQueue::EventQueue()
{
    heap_.reserve(kInitialSlots);
    slots_.reserve(kInitialSlots);
    freeSlots_.reserve(kInitialSlots);
    current_.reserve(kInitialRing);
}

std::uint32_t
EventQueue::takeSlot(Callback &&fn)
{
    if (!freeSlots_.empty()) {
        const std::uint32_t s = freeSlots_.back();
        freeSlots_.pop_back();
        slots_[s] = std::move(fn);
        return s;
    }
    slots_.push_back(std::move(fn));
    return static_cast<std::uint32_t>(slots_.size() - 1);
}

void
EventQueue::schedule(Tick when, Callback fn)
{
    assert(fn);
    if (when <= now_) {
        // Clamp: events may not run in the past.  Same-tick events join
        // the FIFO drain ring directly — everything already drained (or
        // running) carries a smaller seq, so FIFO order is preserved
        // without touching the heap.
        current_.push_back(takeSlot(std::move(fn)));
        ++seq_;
        return;
    }
    heapPush(Key{when, seq_++, takeSlot(std::move(fn))});
}

void
EventQueue::heapPush(Key k)
{
    // Hole percolation: shift parents down, place the key once.
    std::size_t i = heap_.size();
    heap_.push_back(k);
    while (i > 0) {
        const std::size_t parent = (i - 1) / 4;
        if (!before(k, heap_[parent]))
            break;
        heap_[i] = heap_[parent];
        i = parent;
    }
    heap_[i] = k;
}

EventQueue::Key
EventQueue::heapPopTop()
{
    assert(!heap_.empty());
    const Key top = heap_[0];
    const Key last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
        // Sift the former last element down from the root.
        std::size_t i = 0;
        const std::size_t n = heap_.size();
        for (;;) {
            const std::size_t first_child = 4 * i + 1;
            if (first_child >= n)
                break;
            std::size_t best = first_child;
            const std::size_t last_child =
                first_child + 4 <= n ? first_child + 4 : n;
            for (std::size_t c = first_child + 1; c < last_child; ++c) {
                if (before(heap_[c], heap_[best]))
                    best = c;
            }
            if (!before(heap_[best], last))
                break;
            heap_[i] = heap_[best];
            i = best;
        }
        heap_[i] = last;
    }
    return top;
}

bool
EventQueue::runOne()
{
    std::uint32_t s;
    if (!current_.empty()) {
        s = current_.front();
        current_.pop_front();
    } else {
        if (heap_.empty())
            return false;
        // Advance to the next tick.  If more events share it, drain them
        // all into the FIFO ring (pops come out in seq order); from here
        // until the ring empties, schedule() appends same-tick events in
        // O(1).  A lone event skips the ring entirely.
        const Tick t = heap_[0].when;
        assert(t >= now_);
        now_ = t;
        s = heapPopTop().slot;
        while (!heap_.empty() && heap_[0].when == t)
            current_.push_back(heapPopTop().slot);
    }

    // Move the callback out before invoking: the callback may schedule,
    // which can grow or reuse the slot pool.
    Callback fn = std::move(slots_[s]);
    freeSlots_.push_back(s);
    ++executed_;
    fn();
    return true;
}

void
EventQueue::run(std::uint64_t limit)
{
    while (limit-- > 0 && runOne()) {
    }
}

void
EventQueue::runUntil(Tick until)
{
    while (nextEventTick() <= until)
        runOne();
    if (now_ < until)
        now_ = until;
}

} // namespace epf
