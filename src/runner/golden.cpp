#include "runner/golden.hpp"

#include <cstdio>
#include <sstream>

#include "runner/sweep.hpp"
#include "workloads/workload.hpp"

namespace epf
{

const std::vector<Technique> &
goldenTechniques()
{
    static const std::vector<Technique> techs = {
        Technique::kNone,      Technique::kStride,
        Technique::kGhbRegular, Technique::kGhbLarge,
        Technique::kSoftware,  Technique::kPragma,
        Technique::kConverted, Technique::kManual,
        Technique::kManualBlocked,
    };
    return techs;
}

namespace
{

/** Shortest exact decimal form of @p v (17 significant digits). */
std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::vector<GoldenCell>
goldenGrid()
{
    std::vector<GoldenCell> cells;
    for (const auto &wl : workloadNames())
        for (Technique t : goldenTechniques())
            cells.push_back({wl, t});
    return cells;
}

RunConfig
goldenConfig(Technique t)
{
    RunConfig cfg;
    cfg.technique = t;
    cfg.scale.factor = kGoldenScale;
    return cfg;
}

std::string
goldenFileName(const GoldenCell &cell)
{
    return sanitizeFileToken(cell.workload) + "_" +
           sanitizeFileToken(techniqueName(cell.technique)) + ".json";
}

std::string
goldenStatsJson(const GoldenCell &cell, const RunResult &r)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"workload\": \"" << jsonEscape(cell.workload) << "\",\n";
    os << "  \"technique\": \""
       << jsonEscape(techniqueName(cell.technique)) << "\",\n";
    os << "  \"available\": " << (r.available ? "true" : "false") << ",\n";
    if (!r.available) {
        os << "  \"note\": \"" << jsonEscape(r.note) << "\"\n}\n";
        return os.str();
    }
    os << "  \"cycles\": " << r.cycles << ",\n";
    os << "  \"instrs\": " << r.instrs << ",\n";
    os << "  \"ticks\": " << r.ticks << ",\n";
    os << "  \"l1ReadHitRate\": " << fmtDouble(r.l1ReadHitRate) << ",\n";
    os << "  \"l2HitRate\": " << fmtDouble(r.l2HitRate) << ",\n";
    os << "  \"pfUtilisation\": " << fmtDouble(r.pfUtilisation) << ",\n";
    os << "  \"l1PrefetchFills\": " << r.l1PrefetchFills << ",\n";
    os << "  \"dramReads\": " << r.dramReads << ",\n";
    os << "  \"dramWrites\": " << r.dramWrites << ",\n";
    // Checksums exceed the 2^53 range JSON readers keep exact: string.
    os << "  \"checksum\": \"" << r.checksum << "\",\n";
    os << "  \"ppfEventsRun\": " << r.ppfEventsRun << ",\n";
    os << "  \"ppfObservations\": " << r.ppfObservations << ",\n";
    os << "  \"ppuActivity\": [";
    for (std::size_t i = 0; i < r.ppuActivity.size(); ++i)
        os << (i ? ", " : "") << fmtDouble(r.ppuActivity[i]);
    os << "],\n";
    os << "  \"remarks\": [";
    for (std::size_t i = 0; i < r.remarks.size(); ++i)
        os << (i ? ", " : "") << "\"" << jsonEscape(r.remarks[i]) << "\"";
    os << "],\n";
    os << "  \"detail\": {\n";
    const auto &all = r.detail.all();
    std::size_t i = 0;
    for (const auto &[k, v] : all) {
        os << "    \"" << jsonEscape(k) << "\": " << fmtDouble(v)
           << (++i < all.size() ? "," : "") << "\n";
    }
    os << "  }\n}\n";
    return os.str();
}

std::size_t
firstDifferingLine(const std::string &a, const std::string &b)
{
    std::istringstream sa(a), sb(b);
    std::string la, lb;
    std::size_t line = 0;
    for (;;) {
        const bool ga = static_cast<bool>(std::getline(sa, la));
        const bool gb = static_cast<bool>(std::getline(sb, lb));
        ++line;
        if (!ga && !gb)
            return 0;
        if (ga != gb || la != lb)
            return line;
    }
}

} // namespace epf
