#include "runner/tables.hpp"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <sstream>

namespace epf
{

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
TextTable::addRow(std::vector<std::string> row)
{
    assert(row.size() == header_.size());
    rows_.push_back(std::move(row));
}

std::string
TextTable::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    auto line = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << (c == 0 ? "" : "  ") << std::left
               << std::setw(static_cast<int>(width[c])) << cells[c];
        }
        os << "\n";
    };
    line(header_);
    std::string rule;
    for (std::size_t c = 0; c < header_.size(); ++c)
        rule += std::string(width[c], '-') + (c + 1 < header_.size() ? "  " : "");
    os << rule << "\n";
    for (const auto &row : rows_)
        line(row);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto line = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c)
            os << (c == 0 ? "" : ",") << cells[c];
        os << "\n";
    };
    line(header_);
    for (const auto &row : rows_)
        line(row);
}

} // namespace epf
