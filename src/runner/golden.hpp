/**
 * @file
 * Golden-stats harness: canonical serialization of a run's full stats
 * block, plus the fixed grid the goldens cover.
 *
 * Every workload x technique cell at the default seed serializes to one
 * checked-in JSON file (tests/goldens/).  tests/golden_test.cpp diffs
 * live runs against those files, so any change to simulated timing or
 * accounting — intended or not — shows up as an explicit golden update
 * in the PR diff instead of silent drift.  tools/update_goldens
 * regenerates the files.
 *
 * hostSeconds is the one stat deliberately excluded: it measures the
 * host, not the simulation.
 */

#ifndef EPF_RUNNER_GOLDEN_HPP
#define EPF_RUNNER_GOLDEN_HPP

#include <string>
#include <vector>

#include "runner/experiment.hpp"

namespace epf
{

/** One cell of the golden grid. */
struct GoldenCell
{
    std::string workload;
    Technique technique;
};

/** Input scale every golden runs at (matches the integration tests). */
constexpr double kGoldenScale = 0.02;

/**
 * All techniques, in the fixed order the goldens enumerate.  The
 * single source of truth shared by goldenGrid(), golden_test and the
 * trace replay matrix — the tool and the tests cannot drift apart.
 */
const std::vector<Technique> &goldenTechniques();

/** The full workload x technique grid the goldens cover. */
std::vector<GoldenCell> goldenGrid();

/** The canonical RunConfig of a golden cell (default seed, kGoldenScale). */
RunConfig goldenConfig(Technique t);

/** Golden file name for a cell, e.g. "G500-CSR_Manual.json". */
std::string goldenFileName(const GoldenCell &cell);

/**
 * Canonical JSON of one run's complete stats block (minus hostSeconds):
 * headline metrics, per-PPU activity, compiler remarks and every
 * StatRegistry counter.  Doubles print with 17 significant digits, so
 * equal strings mean bit-equal stats.
 */
std::string goldenStatsJson(const GoldenCell &cell, const RunResult &r);

/**
 * First line at which @p a and @p b differ (1-based), or 0 when equal.
 * Used for readable golden-mismatch diagnostics.
 */
std::size_t firstDifferingLine(const std::string &a, const std::string &b);

} // namespace epf

#endif // EPF_RUNNER_GOLDEN_HPP
