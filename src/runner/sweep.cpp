#include "runner/sweep.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>

#include "sim/rng.hpp"

namespace epf
{

namespace
{

/** FNV-1a over the workload name: stable across platforms and runs. */
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001B3ULL;
    }
    return h;
}

/** Minimal JSON string escape (quotes, backslashes, control chars). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Expand {workload}/{technique}/{label} in a cell's trace path. */
std::string
expandTracePath(const std::string &pattern, const SweepCell &cell)
{
    std::string out = pattern;
    const std::pair<const char *, std::string> subs[] = {
        {"{workload}", sanitizeFileToken(cell.workload)},
        {"{technique}",
         sanitizeFileToken(techniqueName(cell.config.technique))},
        {"{label}", sanitizeFileToken(cell.label)},
    };
    for (const auto &[key, value] : subs) {
        for (std::size_t at = out.find(key); at != std::string::npos;
             at = out.find(key, at + value.size()))
            out.replace(at, std::string(key).size(), value);
    }
    return out;
}

} // namespace

std::uint64_t
deriveCellSeed(std::uint64_t base, const std::string &workload,
               Technique tech)
{
    std::uint64_t h = splitmix64(base ^ fnv1a(workload));
    return splitmix64(h ^ (static_cast<std::uint64_t>(tech) + 1));
}

std::size_t
SweepEngine::add(std::string workload, RunConfig cfg, std::string label,
                 std::optional<Technique> seedAs)
{
    const Technique seed_tech = seedAs.value_or(cfg.technique);
    cells_.push_back({std::move(workload), std::move(cfg),
                      std::move(label), seed_tech});
    return cells_.size() - 1;
}

std::size_t
SweepEngine::addGrid(const std::vector<std::string> &workloads,
                     const std::vector<Technique> &techniques,
                     const RunConfig &proto, std::optional<Technique> seedAs)
{
    const std::size_t first = cells_.size();
    for (const auto &wl : workloads) {
        for (Technique t : techniques) {
            RunConfig cfg = proto;
            cfg.technique = t;
            add(wl, std::move(cfg), techniqueName(t), seedAs);
        }
    }
    return first;
}

std::vector<SweepOutcome>
SweepEngine::run()
{
    const std::size_t total = cells_.size();

    // Expand capture paths up front, serially: every cell must end up
    // with a distinct file, or concurrent TraceWriters would interleave
    // into the same path.  Collisions (a literal path with no
    // placeholders, or a grid repeating workload x technique under
    // different configs) get a cell-index suffix.
    std::set<std::string> trace_paths;
    for (std::size_t i = 0; i < total; ++i) {
        std::string &path = cells_[i].config.tracePath;
        if (path.empty())
            continue;
        path = expandTracePath(path, cells_[i]);
        while (!trace_paths.insert(path).second)
            path += "." + std::to_string(i);
    }

    unsigned threads = opts_.threads;
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    if (threads > total && total > 0)
        threads = static_cast<unsigned>(total);

    // Shared state sits behind a shared_ptr so that a worker wedged in
    // a hung cell (which can only be detached, never killed) keeps a
    // valid view even after run() has returned — it just finds
    // `abandoned` set and discards its result instead of committing.
    struct Shared
    {
        Options opts;
        std::vector<SweepCell> cells;
        std::vector<SweepOutcome> outcomes;
        std::atomic<std::size_t> next{0};
        std::mutex mtx;
        std::condition_variable cv;
        // Everything below is guarded by mtx.
        std::size_t done = 0;
        bool abandoned = false;
        /** Per-worker claimed cell (npos when idle) + claim time. */
        std::vector<std::size_t> inFlight;
        std::vector<std::chrono::steady_clock::time_point> startedAt;
    };
    constexpr std::size_t kIdle = static_cast<std::size_t>(-1);

    auto shared = std::make_shared<Shared>();
    shared->opts = opts_;
    shared->cells = std::move(cells_);
    cells_.clear();
    shared->outcomes.resize(total);
    shared->inFlight.assign(threads, kIdle);
    shared->startedAt.resize(threads);

    auto worker = [shared, total](unsigned self) {
        for (;;) {
            const std::size_t i = shared->next.fetch_add(1);
            if (i >= total)
                return;

            {
                std::lock_guard<std::mutex> lock(shared->mtx);
                if (shared->abandoned)
                    return;
                shared->inFlight[self] = i;
                shared->startedAt[self] = std::chrono::steady_clock::now();
            }

            // Compute into a local outcome; it is committed under the
            // lock only while the sweep is still live.
            SweepOutcome out;
            out.cell = shared->cells[i];
            if (shared->opts.deriveSeeds) {
                out.cell.config.seed = deriveCellSeed(
                    shared->opts.baseSeed, out.cell.workload,
                    out.cell.seedTechnique);
            }

            const auto t0 = std::chrono::steady_clock::now();
            try {
                out.result = shared->opts.runCell
                                 ? shared->opts.runCell(out.cell)
                                 : runExperiment(out.cell.workload,
                                                 out.cell.config);
            } catch (const std::exception &e) {
                out.failed = true;
                out.error = e.what();
            } catch (...) {
                out.failed = true;
                out.error = "unknown exception";
            }
            out.hostSeconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();

            {
                std::lock_guard<std::mutex> lock(shared->mtx);
                shared->inFlight[self] = kIdle;
                if (shared->abandoned)
                    return; // the sweep moved on without this result
                shared->outcomes[i] = std::move(out);
                ++shared->done;
                if (shared->opts.progress) {
                    shared->opts.progress(shared->done, total,
                                          shared->outcomes[i]);
                }
            }
            shared->cv.notify_all();
        }
    };

    if (opts_.cellTimeoutSeconds <= 0.0) {
        if (threads <= 1) {
            worker(0);
        } else {
            std::vector<std::thread> pool;
            pool.reserve(threads);
            for (unsigned t = 0; t < threads; ++t)
                pool.emplace_back(worker, t);
            for (auto &th : pool)
                th.join();
        }
        return std::move(shared->outcomes);
    }

    // Watchdog mode: workers always run on their own threads (even at
    // threads == 1) so this thread can time them.
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        pool.emplace_back(worker, t);

    const auto timeout = std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(opts_.cellTimeoutSeconds));

    std::unique_lock<std::mutex> lock(shared->mtx);
    while (shared->done < total) {
        const auto now = std::chrono::steady_clock::now();
        std::size_t hung = kIdle;
        auto wake = now + std::chrono::milliseconds(50);
        for (unsigned w = 0; w < threads; ++w) {
            if (shared->inFlight[w] == kIdle)
                continue;
            const auto deadline = shared->startedAt[w] + timeout;
            if (deadline <= now) {
                hung = shared->inFlight[w];
                break;
            }
            if (deadline < wake)
                wake = deadline;
        }

        if (hung != kIdle) {
            shared->abandoned = true;
            SweepCell cell = shared->cells[hung];
            lock.unlock();
            shared->cv.notify_all();
            // The hung threads cannot be joined; they hold a
            // shared_ptr to the state and exit on their own if the
            // cell ever unwedges.
            for (auto &th : pool)
                th.detach();
            const std::uint64_t seed =
                opts_.deriveSeeds
                    ? deriveCellSeed(opts_.baseSeed, cell.workload,
                                     cell.seedTechnique)
                    : cell.config.seed;
            throw std::runtime_error(
                "sweep cell exceeded the " +
                std::to_string(opts_.cellTimeoutSeconds) +
                "s wall-clock watchdog: workload=" + cell.workload +
                " technique=" + techniqueName(cell.config.technique) +
                (cell.label.empty() ? "" : " label=" + cell.label) +
                " seed=" + std::to_string(seed));
        }
        shared->cv.wait_until(lock, wake);
    }
    lock.unlock();
    for (auto &th : pool)
        th.join();

    return std::move(shared->outcomes);
}

void
SweepEngine::writeJson(std::ostream &os,
                       const std::vector<SweepOutcome> &outcomes,
                       bool detail)
{
    os << "[\n";
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const SweepOutcome &o = outcomes[i];
        const RunResult &r = o.result;
        os << "  {\"workload\": \"" << jsonEscape(o.cell.workload)
           << "\", \"technique\": \""
           << jsonEscape(techniqueName(o.cell.config.technique))
           << "\", \"label\": \"" << jsonEscape(o.cell.label)
           << "\", \"seed\": \"" << o.cell.config.seed
           << "\", \"cores\": "
           << (o.cell.config.cores > 0 ? o.cell.config.cores : 1);
        if (!o.cell.config.tracePath.empty())
            os << ", \"trace\": \"" << jsonEscape(o.cell.config.tracePath)
               << "\"";
        if (o.failed) {
            os << ", \"failed\": true, \"error\": \""
               << jsonEscape(o.error) << "\"";
        } else if (!r.available) {
            os << ", \"available\": false, \"note\": \""
               << jsonEscape(r.note) << "\"";
        } else {
            os << ", \"cycles\": " << r.cycles
               << ", \"instrs\": " << r.instrs << ", \"ticks\": " << r.ticks
               << ", \"l1ReadHitRate\": " << r.l1ReadHitRate
               << ", \"l2HitRate\": " << r.l2HitRate
               << ", \"pfUtilisation\": " << r.pfUtilisation
               << ", \"l1PrefetchFills\": " << r.l1PrefetchFills
               << ", \"dramReads\": " << r.dramReads
               << ", \"dramWrites\": " << r.dramWrites
               << ", \"checksum\": \"" << r.checksum << "\"";
            if (o.cell.config.faults.enabled)
                os << ", \"faultsInjected\": " << r.faultsInjected;
            if (!r.ppuActivity.empty()) {
                os << ", \"ppuActivity\": [";
                for (std::size_t p = 0; p < r.ppuActivity.size(); ++p)
                    os << (p ? ", " : "") << r.ppuActivity[p];
                os << "]";
            }
            if (detail) {
                os << ", \"detail\": {";
                bool first = true;
                for (const auto &[k, v] : r.detail.all()) {
                    os << (first ? "" : ", ") << "\"" << jsonEscape(k)
                       << "\": " << v;
                    first = false;
                }
                os << "}";
            }
        }
        os << ", \"hostSeconds\": " << o.hostSeconds << "}"
           << (i + 1 < outcomes.size() ? "," : "") << "\n";
    }
    os << "]\n";
}

std::string
sanitizeFileToken(const std::string &token)
{
    std::string out;
    out.reserve(token.size());
    for (char c : token) {
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
            c == '_' || c == '-')
            out += c;
        else
            out += '-';
    }
    return out;
}

unsigned
sweepThreadsFromEnv(unsigned fallback)
{
    if (const char *s = std::getenv("EPF_THREADS")) {
        const long v = std::atol(s);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    return fallback;
}

unsigned
sweepCoresFromEnv(unsigned fallback)
{
    if (const char *s = std::getenv("EPF_CORES")) {
        const long v = std::atol(s);
        if (v > 0 && v <= 32)
            return static_cast<unsigned>(v);
    }
    return fallback;
}

FaultConfig
sweepFaultsFromEnv()
{
    if (const char *s = std::getenv("EPF_FAULTS"))
        return parseFaultConfig(s);
    return FaultConfig{};
}

double
sweepCellTimeoutFromEnv(double fallback)
{
    if (const char *s = std::getenv("EPF_CELL_TIMEOUT")) {
        const double v = std::atof(s);
        if (v > 0)
            return v;
    }
    return fallback;
}

} // namespace epf
