/**
 * @file
 * ASCII table / CSV rendering for the bench harnesses.
 */

#ifndef EPF_RUNNER_TABLES_HPP
#define EPF_RUNNER_TABLES_HPP

#include <ostream>
#include <string>
#include <vector>

namespace epf
{

/** A simple column-aligned text table with an optional CSV dump. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append a row (must match the header width). */
    void addRow(std::vector<std::string> row);

    /** Helper: format a double with @p precision digits. */
    static std::string num(double v, int precision = 2);

    /** Render aligned text. */
    void print(std::ostream &os) const;

    /** Render CSV. */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace epf

#endif // EPF_RUNNER_TABLES_HPP
