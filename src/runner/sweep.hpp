/**
 * @file
 * Parallel experiment sweep engine.
 *
 * The Section 7 evaluation is a grid: ~9 techniques x 8 workloads, with
 * ablation axes (PPU clock, PPU count, blocking) layered on top.  Every
 * run is independent — it owns a fresh workload instance, GuestMemory and
 * EventQueue — so the grid is embarrassingly parallel across host
 * threads.  The engine queues cells, fans them out over a thread pool,
 * and returns outcomes in submission order.
 *
 * Determinism: each cell's RNG seed is derived from
 * (base seed, workload name, technique) via deriveCellSeed(), never from
 * submission order or scheduling, so a sweep produces bit-identical
 * RunResults at any thread count.
 */

#ifndef EPF_RUNNER_SWEEP_HPP
#define EPF_RUNNER_SWEEP_HPP

#include <cstdint>
#include <functional>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "runner/experiment.hpp"

namespace epf
{

/** One cell of a sweep: a named workload under one full RunConfig. */
struct SweepCell
{
    std::string workload;
    RunConfig config;
    /** Free-form tag distinguishing ablation points ("1GHz", "6 PPUs"). */
    std::string label;
    /**
     * Technique used for seed derivation; defaults to
     * config.technique.  Figure grids that compare techniques on the
     * same dataset pin every column of a workload to one technique's
     * seed (the paper runs all techniques on identical inputs).
     */
    Technique seedTechnique = Technique::kNone;
};

/** The outcome of one cell. */
struct SweepOutcome
{
    SweepCell cell;
    RunResult result;
    bool failed = false; ///< runExperiment threw
    std::string error;
    double hostSeconds = 0.0;
};

/**
 * Deterministic per-cell seed: mixes the base seed with the workload
 * name and technique so (a) different cells decorrelate and (b) the same
 * (workload, technique) pair seeds identically in every sweep shape.
 */
std::uint64_t deriveCellSeed(std::uint64_t base, const std::string &workload,
                             Technique tech);

/** Batched, parallel driver for grids of runExperiment() calls. */
class SweepEngine
{
  public:
    struct Options
    {
        /** Worker threads; 0 means std::thread::hardware_concurrency(). */
        unsigned threads = 0;
        /** Base seed every cell's seed is derived from. */
        std::uint64_t baseSeed = 0xE7F5EED5;
        /**
         * When true (default), each cell's RunConfig::seed is overwritten
         * with deriveCellSeed(); set false to honour caller seeds.
         */
        bool deriveSeeds = true;
        /** Invoked after each cell completes (serialised; may be empty). */
        std::function<void(std::size_t done, std::size_t total,
                           const SweepOutcome &)>
            progress;
        /**
         * Per-cell wall-clock watchdog, in seconds (0 disables).  A cell
         * exceeding it makes run() abandon the pool (hung threads are
         * detached, never joined — they cannot be killed) and throw a
         * std::runtime_error naming the hung cell's workload, technique,
         * label and seed, instead of wedging forever.  Results computed
         * by abandoned workers are discarded, never committed.
         */
        double cellTimeoutSeconds = 0.0;
        /**
         * Test hook: when set, runs each cell instead of
         * runExperiment() (the cell arrives with its derived seed).
         * The watchdog tests use it to install a deliberately-hung
         * workload that a later release can actually unhang.
         */
        std::function<RunResult(const SweepCell &)> runCell;
    };

    SweepEngine() = default;
    explicit SweepEngine(Options opts) : opts_(std::move(opts)) {}

    /**
     * Queue one cell; returns its index into run()'s result vector.
     * @p seedAs overrides the technique the seed is derived from (see
     * SweepCell::seedTechnique); defaults to cfg.technique.
     */
    std::size_t add(std::string workload, RunConfig cfg,
                    std::string label = "",
                    std::optional<Technique> seedAs = std::nullopt);

    /**
     * Queue the full workload x technique grid, cloning @p proto for
     * every cell (row-major: all techniques of workloads[0] first).
     * Returns the index of the first queued cell.
     */
    std::size_t addGrid(const std::vector<std::string> &workloads,
                        const std::vector<Technique> &techniques,
                        const RunConfig &proto,
                        std::optional<Technique> seedAs = std::nullopt);

    std::size_t size() const { return cells_.size(); }
    const std::vector<SweepCell> &cells() const { return cells_; }

    /**
     * Run every queued cell across the pool and clear the queue.
     * Outcomes are indexed by submission order regardless of thread
     * count or completion order.  A cell whose runExperiment() throws
     * yields failed=true rather than aborting the sweep.
     */
    std::vector<SweepOutcome> run();

    /** Serialise outcomes as a JSON array (checksums as decimal strings
     *  — they exceed the 2^53 integer range JSON readers preserve).
     *  @p detail additionally embeds every RunResult::detail counter. */
    static void writeJson(std::ostream &os,
                          const std::vector<SweepOutcome> &outcomes,
                          bool detail = false);

  private:
    Options opts_;
    std::vector<SweepCell> cells_;
};

/** Worker count from EPF_THREADS, else @p fallback (0 = all cores). */
unsigned sweepThreadsFromEnv(unsigned fallback = 0);

/** Simulated-machine core count from EPF_CORES (1..32), else
 *  @p fallback.  Applied by the benches to every cell's RunConfig. */
unsigned sweepCoresFromEnv(unsigned fallback = 1);

/** Fault schedule from EPF_FAULTS (see parseFaultConfig() for the
 *  grammar), else disabled.  Malformed input throws, like any other
 *  configuration error. */
FaultConfig sweepFaultsFromEnv();

/** Per-cell watchdog seconds from EPF_CELL_TIMEOUT, else @p fallback
 *  (0 = no watchdog). */
double sweepCellTimeoutFromEnv(double fallback = 0.0);

/**
 * Filesystem-safe form of a workload/technique/label name (non
 * [alnum._-] bytes become '-').  Shared by the sweep's capture-path
 * placeholders and the golden file names so the two stay consistent.
 */
std::string sanitizeFileToken(const std::string &token);

} // namespace epf

#endif // EPF_RUNNER_SWEEP_HPP
