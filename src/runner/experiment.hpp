/**
 * @file
 * Experiment harness: assemble the Table 1 machine around a workload,
 * attach one prefetching technique, run to completion and collect the
 * metrics every figure of Section 7 needs.
 */

#ifndef EPF_RUNNER_EXPERIMENT_HPP
#define EPF_RUNNER_EXPERIMENT_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/core.hpp"
#include "ppf/ppf.hpp"
#include "prefetch/ghb.hpp"
#include "prefetch/stride.hpp"
#include "sim/fault.hpp"
#include "sim/stats.hpp"
#include "workloads/workload.hpp"

namespace epf
{

/** The prefetching techniques compared in Figure 7 (plus the Fig. 11
 *  blocked-mode ablation). */
enum class Technique
{
    kNone,
    kStride,
    kGhbRegular,
    kGhbLarge,
    kSoftware,
    kPragma,
    kConverted,
    kManual,
    kManualBlocked,
};

/** Display name as used in the paper's legends. */
std::string techniqueName(Technique t);

/** Full configuration of one run. */
struct RunConfig
{
    Technique technique = Technique::kNone;
    CoreParams core;
    MemParams mem = MemParams::defaults();
    PpfConfig ppf;
    StrideParams stride;
    GhbParams ghbRegular = GhbParams::regular();
    GhbParams ghbLarge = GhbParams::large();
    std::uint64_t seed = 0xE7F5EED5;
    WorkloadScale scale;
    /**
     * Fault-injection schedule of this run (disabled by default; see
     * sim/fault.hpp).  The schedule derives from `seed`, so the same
     * (config, seed) pair injects bit-identically across thread counts
     * and trace replay.  Architectural results must not change under
     * any schedule — the tier-2 FaultParity matrix enforces it.
     */
    FaultConfig faults;
    /**
     * Number of cores in the machine.  Each core owns a private L1,
     * TLB slice and prefetcher instance over the shared banked L2
     * (one bank per core unless mem.l2Banks overrides).  Shardable
     * workloads partition their outer loop across all cores; serial
     * workloads run on core 0 with the other cores idle.  1 is the
     * paper's Table 1 uniprocessor and is bit-identical to the
     * pre-multicore machine.
     */
    unsigned cores = 1;
    /**
     * When non-empty, capture the demand micro-op stream of this run to
     * the given trace file (see src/trace/trace.hpp).  Inside sweeps the
     * placeholders {workload}, {technique} and {label} expand per cell.
     * Capture requires cores == 1 (the trace format has no core field
     * yet); multi-core capture is a configure-time error.
     */
    std::string tracePath;
};

/** Everything a bench needs from one run. */
struct RunResult
{
    bool available = true; ///< false when the technique doesn't apply
    std::string note;

    /** Slowest core's cycle count (the parallel critical path). */
    std::uint64_t cycles = 0;
    /** Instructions summed over all cores. */
    std::uint64_t instrs = 0;
    Tick ticks = 0;

    double l1ReadHitRate = 0.0;
    double l2HitRate = 0.0;
    double pfUtilisation = 0.0; ///< used / L1 prefetch fills
    std::uint64_t l1PrefetchFills = 0;
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;

    /** Per-PPU busy fraction (programmable techniques only); for a
     *  multi-core run, core 0's PPUs first, then core 1's, ... */
    std::vector<double> ppuActivity;
    std::uint64_t ppfEventsRun = 0;
    std::uint64_t ppfObservations = 0;

    std::uint64_t checksum = 0;

    /** Total faults injected (0 when fault injection is disabled). */
    std::uint64_t faultsInjected = 0;

    /** Pass remarks (converted/pragma techniques). */
    std::vector<std::string> remarks;

    /** Every counter the components expose (debugging, EXPERIMENTS.md). */
    StatRegistry detail;
};

/** True for the techniques that use the programmable prefetcher. */
bool usesPpf(Technique t);

/**
 * Run @p workload_name under @p cfg.  A fresh workload instance is
 * created for every run so functional state and caches start cold.
 */
RunResult runExperiment(const std::string &workload_name,
                        const RunConfig &cfg);

} // namespace epf

#endif // EPF_RUNNER_EXPERIMENT_HPP
