#include "runner/experiment.hpp"

#include <cassert>
#include <stdexcept>

#include "compiler/passes.hpp"
#include "mem/core_port.hpp"
#include "mem/guest_memory.hpp"
#include "mem/uncore.hpp"
#include "sim/event_queue.hpp"
#include "trace/trace.hpp"

namespace epf
{

std::string
techniqueName(Technique t)
{
    switch (t) {
      case Technique::kNone: return "None";
      case Technique::kStride: return "Stride";
      case Technique::kGhbRegular: return "GHB(regular)";
      case Technique::kGhbLarge: return "GHB(large)";
      case Technique::kSoftware: return "Software";
      case Technique::kPragma: return "Pragma";
      case Technique::kConverted: return "Converted";
      case Technique::kManual: return "Manual";
      case Technique::kManualBlocked: return "Blocked";
    }
    return "?";
}

bool
usesPpf(Technique t)
{
    return t == Technique::kPragma || t == Technique::kConverted ||
           t == Technique::kManual || t == Technique::kManualBlocked;
}

namespace
{

/** The trace an idle core runs (serial workload, core > 0). */
Generator<MicroOp>
emptyTrace()
{
    co_return;
}

/** Per-core prefetcher instances attached to one core port. */
struct CoreTechnique
{
    std::unique_ptr<StridePrefetcher> stride;
    std::unique_ptr<GhbPrefetcher> ghb;
    std::unique_ptr<ProgrammablePrefetcher> ppf;
};

} // namespace

RunResult
runExperiment(const std::string &workload_name, const RunConfig &cfg)
{
    RunResult res;

    auto wl = makeWorkload(workload_name, cfg.scale);
    if (!wl)
        throw std::invalid_argument("unknown workload: " + workload_name);

    if (cfg.technique == Technique::kSoftware && !wl->supportsSoftware()) {
        res.available = false;
        res.note = "no direct memory address access so software prefetch "
                   "not possible";
        return res;
    }

    const unsigned cores = cfg.cores > 0 ? cfg.cores : 1;
    if (cores > 32)
        throw std::invalid_argument("RunConfig::cores exceeds 32");
    if (cores > 1 && !cfg.tracePath.empty()) {
        // The trace format has no core field: interleaving several
        // cores' streams into it would produce a corrupt capture, so
        // reject at configure time rather than write garbage.
        throw std::invalid_argument(
            "trace capture requires cores == 1 (capture of workload '" +
            workload_name + "' was requested with cores = " +
            std::to_string(cores) + ")");
    }

    EventQueue eq;
    GuestMemory gmem;
    wl->setup(gmem, cfg.seed);

    // One fault injector per run, shared by every component: the
    // simulation of a run is single-threaded, so its draws happen in
    // deterministic event order; the schedule is a pure function of
    // (cfg.faults, cfg.seed).
    std::unique_ptr<FaultInjector> faults;
    if (cfg.faults.enabled)
        faults = std::make_unique<FaultInjector>(cfg.faults, cfg.seed);

    // Machine assembly: one shared uncore (banked L2, DRAM, page
    // table, coherence directory), one private port + core per core id.
    Uncore uncore(eq, gmem, cfg.mem, cores);
    uncore.dram().setFaultInjector(faults.get());
    std::vector<std::unique_ptr<CorePort>> ports;
    std::vector<std::unique_ptr<Core>> cpus;
    ports.reserve(cores);
    cpus.reserve(cores);
    for (unsigned i = 0; i < cores; ++i) {
        ports.push_back(
            std::make_unique<CorePort>(eq, gmem, uncore, cfg.mem, i));
        ports.back()->setFaultInjector(faults.get());
        cpus.push_back(std::make_unique<Core>(eq, cfg.core, *ports[i], i));
    }

    // Technique attachment: every core gets its own prefetcher
    // instance over its own L1 (the paper's PPF is per-core).
    std::vector<CoreTechnique> tech(cores);

    // Compiled techniques run the passes once; the resulting program
    // installs into every core's PPF.
    std::vector<PassResult> passes;
    if (cfg.technique == Technique::kPragma ||
        cfg.technique == Technique::kConverted) {
        auto loops = wl->buildIR();
        for (const auto &loop : loops) {
            PassResult pr = cfg.technique == Technique::kConverted
                                ? convertSoftwarePrefetches(*loop)
                                : generateFromPragma(*loop);
            for (const auto &r : pr.program.remarks)
                res.remarks.push_back(r);
            if (!pr.ok) {
                res.remarks.push_back("loop not converted: " +
                                      pr.failureReason);
                continue;
            }
            passes.push_back(std::move(pr));
        }
        if (passes.empty()) {
            res.available = false;
            res.note = "compiler pass produced no events";
            return res;
        }
    }

    for (unsigned i = 0; i < cores; ++i) {
        CorePort &port = *ports[i];
        CoreTechnique &t = tech[i];
        switch (cfg.technique) {
          case Technique::kNone:
          case Technique::kSoftware:
            break;
          case Technique::kStride:
            t.stride = std::make_unique<StridePrefetcher>(cfg.stride);
            port.setListener(t.stride.get());
            port.setPrefetchSource(t.stride.get());
            break;
          case Technique::kGhbRegular:
            t.ghb = std::make_unique<GhbPrefetcher>(cfg.ghbRegular);
            port.setListener(t.ghb.get());
            port.setPrefetchSource(t.ghb.get());
            break;
          case Technique::kGhbLarge:
            t.ghb = std::make_unique<GhbPrefetcher>(cfg.ghbLarge);
            port.setListener(t.ghb.get());
            port.setPrefetchSource(t.ghb.get());
            break;
          case Technique::kPragma:
          case Technique::kConverted:
          case Technique::kManual:
          case Technique::kManualBlocked: {
            PpfConfig pc = cfg.ppf;
            if (cfg.technique == Technique::kManualBlocked)
                pc.blocking = true;
            t.ppf = std::make_unique<ProgrammablePrefetcher>(eq, gmem, pc);

            if (cfg.technique == Technique::kManual ||
                cfg.technique == Technique::kManualBlocked) {
                wl->programManual(*t.ppf);
            } else {
                for (const auto &pr : passes)
                    pr.program.installInto(*t.ppf);
            }

            // The paper's PPU instruction budget: kernels must fit the
            // 4 KiB shared instruction cache (per core).  Programs are
            // guest-supplied input, so an oversized one is a clean
            // configuration error, not an assertion.
            if (t.ppf->kernels().totalBytes() > 4096) {
                throw std::invalid_argument(
                    "kernel programs of workload '" + workload_name +
                    "' exceed the 4 KiB PPU instruction budget (" +
                    std::to_string(t.ppf->kernels().totalBytes()) +
                    " bytes)");
            }

            port.setListener(t.ppf.get());
            port.setPrefetchSource(t.ppf.get());
            t.ppf->setKick([&port] { port.kickPrefetcher(); });
            t.ppf->setFaultInjector(faults.get());
            break;
          }
        }
    }

    // Optional trace capture (single-core only, enforced above):
    // record every fetched micro-op plus the line payloads a replay
    // needs (capture starts after setup, so the region table in the
    // header is complete).
    std::unique_ptr<TraceWriter> capture;
    if (!cfg.tracePath.empty()) {
        // A replayed trace re-captures as an origin-less stream rather
        // than recording "Trace" as its own source.
        const std::string source =
            wl->name() == "Trace" ? std::string() : wl->name();
        capture = std::make_unique<TraceWriter>(
            cfg.tracePath, gmem, source, cfg.scale.factor, cfg.seed,
            cfg.technique == Technique::kSoftware);
        cpus[0]->setFetchSink(capture.get());
    }

    // Partition the workload: shardable workloads split their outer
    // loop over all cores; serial ones run whole on core 0 and the
    // other cores retire an empty trace immediately.
    const bool swpf = cfg.technique == Technique::kSoftware;
    const unsigned shards = wl->supportsSharding() ? cores : 1;
    std::vector<char> done(cores, 0);
    for (unsigned i = 0; i < cores; ++i) {
        Generator<MicroOp> trace =
            shards == 1 ? (i == 0 ? wl->trace(swpf) : emptyTrace())
                        : wl->shardTrace(i, shards, swpf);
        char *flag = &done[i];
        cpus[i]->run(std::move(trace), [flag] { *flag = 1; });
    }
    // Drain every event (outstanding prefetches included).
    while (!eq.empty())
        eq.run(1'000'000);
    for (unsigned i = 0; i < cores; ++i) {
        assert(done[i] && "a core did not finish");
        (void)done[i];
    }

    if (capture)
        capture->finalize(wl->checksum());

    // ---- Collect metrics ----

    res.ticks = eq.now();

    Core::Stats cs{}; // aggregate over cores (cycles = max)
    for (unsigned i = 0; i < cores; ++i) {
        const auto &c = cpus[i]->stats();
        cs.cycles = c.cycles > cs.cycles ? c.cycles : cs.cycles;
        cs.instrs += c.instrs;
        cs.loads += c.loads;
        cs.stores += c.stores;
        cs.swPrefetches += c.swPrefetches;
        cs.configOps += c.configOps;
        cs.branchMisses += c.branchMisses;
        cs.commitStallCycles += c.commitStallCycles;
        cs.robFullCycles += c.robFullCycles;
    }
    res.cycles = cs.cycles;
    res.instrs = cs.instrs;

    Cache::Stats l1{}; // aggregate over L1s
    for (unsigned i = 0; i < cores; ++i)
        l1 += ports[i]->l1().stats();
    res.l1ReadHitRate =
        l1.loads > 0
            ? static_cast<double>(l1.loadHits) / static_cast<double>(l1.loads)
            : 0.0;

    const Cache::Stats l2 = uncore.l2Stats();
    std::uint64_t l2_demand =
        l2.lowerReads; // reads from L1 (demand + prefetch misses)
    res.l2HitRate = l2_demand > 0 ? static_cast<double>(l2.lowerReadHits) /
                                        static_cast<double>(l2_demand)
                                  : 0.0;

    std::uint64_t fills = l1.prefetchFills;
    res.l1PrefetchFills = fills;
    res.pfUtilisation =
        fills > 0 ? static_cast<double>(l1.pfUsed) /
                        static_cast<double>(fills)
                  : 0.0;

    res.dramReads = uncore.dram().stats().reads;
    res.dramWrites = uncore.dram().stats().writes;

    const Tick total = res.ticks > 0 ? res.ticks : 1;
    for (unsigned i = 0; i < cores; ++i) {
        if (!tech[i].ppf)
            continue;
        for (const auto &ps : tech[i].ppf->ppuStats()) {
            res.ppuActivity.push_back(static_cast<double>(ps.busyTicks) /
                                      static_cast<double>(total));
        }
        res.ppfEventsRun += tech[i].ppf->stats().eventsRun;
        res.ppfObservations += tech[i].ppf->stats().observations;
    }

    res.checksum = wl->checksum();

    // ---- Publish every component counter ----
    //
    // A single-core run publishes exactly the historical names
    // ("core.cycles", "l1.loads", ...); a multi-core run prefixes each
    // per-core block with "coreN." and adds the shared uncore block.
    // setUnique() turns any accidental aliasing between two components
    // into a hard error instead of a silently overwritten counter.
    auto &d = res.detail;
    const auto set = [&d](const std::string &name, double v) {
        d.setUnique(name, v);
    };

    for (unsigned i = 0; i < cores; ++i) {
        // Single-core: the historical names ("core.cycles",
        // "l1.loads").  Multi-core: "coreN.cycles", "coreN.l1.loads".
        const std::string cpfx =
            cores == 1 ? "core." : "core" + std::to_string(i) + ".";
        const std::string pfx =
            cores == 1 ? std::string() : "core" + std::to_string(i) + ".";
        const auto &c = cpus[i]->stats();
        set(cpfx + "cycles", static_cast<double>(c.cycles));
        set(cpfx + "instrs", static_cast<double>(c.instrs));
        set(cpfx + "loads", static_cast<double>(c.loads));
        set(cpfx + "stores", static_cast<double>(c.stores));
        set(cpfx + "swPrefetches", static_cast<double>(c.swPrefetches));
        set(cpfx + "commitStallCycles",
            static_cast<double>(c.commitStallCycles));
        set(cpfx + "robFullCycles",
            static_cast<double>(c.robFullCycles));

        const auto &s = ports[i]->l1().stats();
        set(pfx + "l1.loads", static_cast<double>(s.loads));
        set(pfx + "l1.loadHits", static_cast<double>(s.loadHits));
        set(pfx + "l1.demandMerges", static_cast<double>(s.demandMerges));
        set(pfx + "l1.mshrRejects", static_cast<double>(s.mshrRejects));
        set(pfx + "l1.prefetchFills",
            static_cast<double>(s.prefetchFills));
        set(pfx + "l1.pfUsed", static_cast<double>(s.pfUsed));
        set(pfx + "l1.pfUsedLate", static_cast<double>(s.pfUsedLate));
        set(pfx + "l1.pfUnusedEvicted",
            static_cast<double>(s.pfUnusedEvicted));
        set(pfx + "l1.pfDropPresent",
            static_cast<double>(s.pfDropPresent));
        set(pfx + "l1.writebacks", static_cast<double>(s.writebacks));
        if (cores > 1) {
            set(pfx + "l1.invalidations",
                static_cast<double>(s.invalidations));
        }

        const auto &hs = ports[i]->stats();
        // Published only when the defensive skid bound actually shed
        // load: the golden stats of fault-free runs stay byte-stable.
        if (hs.pfSkidDropped > 0) {
            set(pfx + "mem.pfSkidDropped",
                static_cast<double>(hs.pfSkidDropped));
        }
        set(pfx + "mem.loadRetries", static_cast<double>(hs.loadRetries));
        set(pfx + "mem.storeRetries",
            static_cast<double>(hs.storeRetries));
        set(pfx + "mem.swPrefetchDrops",
            static_cast<double>(hs.swPrefetchDrops));
        set(pfx + "mem.pfIssued", static_cast<double>(hs.pfIssued));
        set(pfx + "mem.pfDropPresent",
            static_cast<double>(hs.pfDropPresent));
        set(pfx + "mem.pfDropMerged",
            static_cast<double>(hs.pfDropMerged));
        set(pfx + "mem.pfDropFault", static_cast<double>(hs.pfDropFault));

        const auto &ts = ports[i]->tlb().stats();
        set(pfx + "tlb.l1Hits", static_cast<double>(ts.l1Hits));
        set(pfx + "tlb.l2Hits", static_cast<double>(ts.l2Hits));
        set(pfx + "tlb.walks", static_cast<double>(ts.walks));
        set(pfx + "tlb.faults", static_cast<double>(ts.faults));

        if (tech[i].ppf) {
            const auto &ps = tech[i].ppf->stats();
            set(pfx + "ppf.observations",
                static_cast<double>(ps.observations));
            set(pfx + "ppf.obsDropped",
                static_cast<double>(ps.obsDropped));
            set(pfx + "ppf.obsNoData", static_cast<double>(ps.obsNoData));
            set(pfx + "ppf.eventsRun", static_cast<double>(ps.eventsRun));
            set(pfx + "ppf.traps", static_cast<double>(ps.traps));
            set(pfx + "ppf.prefetchesEmitted",
                static_cast<double>(ps.prefetchesEmitted));
            set(pfx + "ppf.reqDropped",
                static_cast<double>(ps.reqDropped));
            set(pfx + "ppf.chainSamples",
                static_cast<double>(ps.chainSamples));
            set(pfx + "ppf.blockedStalls",
                static_cast<double>(ps.blockedStalls));
            set(pfx + "ppf.lookahead0",
                static_cast<double>(tech[i].ppf->lookaheadOf(0)));

            // Degradation counters publish only when their mechanism
            // is configured on (or, for the blocked-local bound, when
            // it actually dropped): default-config golden runs keep
            // their historical counter set byte-for-byte.
            const PpfConfig &pc = tech[i].ppf->config();
            if (ps.localDropped > 0) {
                set(pfx + "ppf.localDropped",
                    static_cast<double>(ps.localDropped));
            }
            if (pc.stormWindowTicks > 0) {
                set(pfx + "ppf.throttleDropped",
                    static_cast<double>(ps.throttleDropped));
                set(pfx + "ppf.throttleEntries",
                    static_cast<double>(ps.throttleEntries));
            }
            if (pc.quarantineThreshold > 0) {
                set(pfx + "ppf.quarantineKills",
                    static_cast<double>(ps.quarantineKills));
                set(pfx + "ppf.quarantineReenables",
                    static_cast<double>(ps.quarantineReenables));
                set(pfx + "ppf.quarantineSkips",
                    static_cast<double>(ps.quarantineSkips));
                set(pfx + "ppf.quarantineLogHash",
                    static_cast<double>(
                        tech[i].ppf->quarantineLogHash() >> 11));
            }
        }
    }

    set("l2.reads", static_cast<double>(l2.lowerReads));
    set("l2.readHits", static_cast<double>(l2.lowerReadHits));

    const auto &ds = uncore.dram().stats();
    set("dram.reads", static_cast<double>(ds.reads));
    set("dram.writes", static_cast<double>(ds.writes));
    set("dram.rowHits", static_cast<double>(ds.rowHits));
    set("dram.rowMisses", static_cast<double>(ds.rowMisses));
    set("dram.prefetchReads", static_cast<double>(ds.prefetchReads));
    if (ds.reads > 0) {
        set("dram.avgReadLatencyNs",
            static_cast<double>(ds.totalReadLatency) /
                static_cast<double>(ds.reads) / kTicksPerNs);
    }

    if (faults) {
        res.faultsInjected = faults->totalFired();
        // Every site publishes (zero included): a schedule is readable
        // off the sweep JSON alone.  The whole block is keyed on
        // cfg.faults.enabled, so fault-free runs (all goldens) don't
        // gain counters.
        set("fault.injected", static_cast<double>(res.faultsInjected));
        for (unsigned s = 0; s < kNumFaultSites; ++s) {
            const auto site = static_cast<FaultSite>(s);
            set(std::string("fault.") + faultSiteName(site) + ".injected",
                static_cast<double>(faults->fired(site)));
        }
    }

    if (cores > 1) {
        const auto &us = uncore.stats();
        set("uncore.cores", static_cast<double>(cores));
        set("uncore.l2Banks", static_cast<double>(uncore.banks()));
        set("uncore.arbGrants", static_cast<double>(us.arbGrants));
        set("uncore.arbConflicts", static_cast<double>(us.arbConflicts));
        set("uncore.invalidations",
            static_cast<double>(us.invalidations));
        set("uncore.downgrades", static_cast<double>(us.downgrades));
        for (unsigned b = 0; b < uncore.banks(); ++b) {
            const auto &bs = uncore.l2Bank(b).stats();
            const std::string bpfx = "l2.b" + std::to_string(b) + ".";
            set(bpfx + "reads", static_cast<double>(bs.lowerReads));
            set(bpfx + "readHits",
                static_cast<double>(bs.lowerReadHits));
        }
    }

    return res;
}

} // namespace epf
