#include "runner/experiment.hpp"

#include <cassert>
#include <stdexcept>

#include "compiler/passes.hpp"
#include "mem/guest_memory.hpp"
#include "sim/event_queue.hpp"
#include "trace/trace.hpp"

namespace epf
{

std::string
techniqueName(Technique t)
{
    switch (t) {
      case Technique::kNone: return "None";
      case Technique::kStride: return "Stride";
      case Technique::kGhbRegular: return "GHB(regular)";
      case Technique::kGhbLarge: return "GHB(large)";
      case Technique::kSoftware: return "Software";
      case Technique::kPragma: return "Pragma";
      case Technique::kConverted: return "Converted";
      case Technique::kManual: return "Manual";
      case Technique::kManualBlocked: return "Blocked";
    }
    return "?";
}

bool
usesPpf(Technique t)
{
    return t == Technique::kPragma || t == Technique::kConverted ||
           t == Technique::kManual || t == Technique::kManualBlocked;
}

RunResult
runExperiment(const std::string &workload_name, const RunConfig &cfg)
{
    RunResult res;

    auto wl = makeWorkload(workload_name, cfg.scale);
    if (!wl)
        throw std::invalid_argument("unknown workload: " + workload_name);

    if (cfg.technique == Technique::kSoftware && !wl->supportsSoftware()) {
        res.available = false;
        res.note = "no direct memory address access so software prefetch "
                   "not possible";
        return res;
    }

    EventQueue eq;
    GuestMemory gmem;
    wl->setup(gmem, cfg.seed);

    MemoryHierarchy mem(eq, gmem, cfg.mem);
    Core core(eq, cfg.core, mem);

    // Technique attachment.
    StridePrefetcher stride(cfg.stride);
    std::unique_ptr<GhbPrefetcher> ghb;
    std::unique_ptr<ProgrammablePrefetcher> ppf;

    switch (cfg.technique) {
      case Technique::kNone:
      case Technique::kSoftware:
        break;
      case Technique::kStride:
        mem.setListener(&stride);
        mem.setPrefetchSource(&stride);
        break;
      case Technique::kGhbRegular:
        ghb = std::make_unique<GhbPrefetcher>(cfg.ghbRegular);
        mem.setListener(ghb.get());
        mem.setPrefetchSource(ghb.get());
        break;
      case Technique::kGhbLarge:
        ghb = std::make_unique<GhbPrefetcher>(cfg.ghbLarge);
        mem.setListener(ghb.get());
        mem.setPrefetchSource(ghb.get());
        break;
      case Technique::kPragma:
      case Technique::kConverted:
      case Technique::kManual:
      case Technique::kManualBlocked: {
        PpfConfig pc = cfg.ppf;
        if (cfg.technique == Technique::kManualBlocked)
            pc.blocking = true;
        ppf = std::make_unique<ProgrammablePrefetcher>(eq, gmem, pc);

        if (cfg.technique == Technique::kManual ||
            cfg.technique == Technique::kManualBlocked) {
            wl->programManual(*ppf);
        } else {
            auto loops = wl->buildIR();
            unsigned installed = 0;
            for (const auto &loop : loops) {
                PassResult pr = cfg.technique == Technique::kConverted
                                    ? convertSoftwarePrefetches(*loop)
                                    : generateFromPragma(*loop);
                for (const auto &r : pr.program.remarks)
                    res.remarks.push_back(r);
                if (!pr.ok) {
                    res.remarks.push_back("loop not converted: " +
                                          pr.failureReason);
                    continue;
                }
                pr.program.installInto(*ppf);
                ++installed;
            }
            if (installed == 0) {
                res.available = false;
                res.note = "compiler pass produced no events";
                return res;
            }
        }

        // The paper's PPU instruction budget: kernels must fit the 4 KiB
        // shared instruction cache.
        assert(ppf->kernels().totalBytes() <= 4096);

        mem.setListener(ppf.get());
        mem.setPrefetchSource(ppf.get());
        ppf->setKick([&mem] { mem.kickPrefetcher(); });
        break;
      }
    }

    // Optional trace capture: record every fetched micro-op plus the
    // line payloads a replay needs (capture starts after setup, so the
    // region table in the header is complete).
    std::unique_ptr<TraceWriter> capture;
    if (!cfg.tracePath.empty()) {
        // A replayed trace re-captures as an origin-less stream rather
        // than recording "Trace" as its own source.
        const std::string source =
            wl->name() == "Trace" ? std::string() : wl->name();
        capture = std::make_unique<TraceWriter>(
            cfg.tracePath, gmem, source, cfg.scale.factor, cfg.seed,
            cfg.technique == Technique::kSoftware);
        core.setFetchSink(capture.get());
    }

    // Run the trace to completion.
    bool done = false;
    core.run(wl->trace(cfg.technique == Technique::kSoftware),
             [&done] { done = true; });
    // Drain every event (outstanding prefetches included).
    while (!eq.empty())
        eq.run(1'000'000);
    assert(done && "core did not finish");

    if (capture)
        capture->finalize(wl->checksum());

    // Collect metrics.
    const auto &cs = core.stats();
    res.cycles = cs.cycles;
    res.instrs = cs.instrs;
    res.ticks = eq.now();

    const auto &l1 = mem.l1().stats();
    res.l1ReadHitRate =
        l1.loads > 0
            ? static_cast<double>(l1.loadHits) / static_cast<double>(l1.loads)
            : 0.0;
    const auto &l2 = mem.l2().stats();
    std::uint64_t l2_demand =
        l2.lowerReads; // reads from L1 (demand + prefetch misses)
    res.l2HitRate = l2_demand > 0 ? static_cast<double>(l2.lowerReadHits) /
                                        static_cast<double>(l2_demand)
                                  : 0.0;

    std::uint64_t fills = l1.prefetchFills;
    res.l1PrefetchFills = fills;
    res.pfUtilisation =
        fills > 0 ? static_cast<double>(l1.pfUsed) /
                        static_cast<double>(fills)
                  : 0.0;

    res.dramReads = mem.dram().stats().reads;
    res.dramWrites = mem.dram().stats().writes;

    if (ppf) {
        const Tick total = res.ticks > 0 ? res.ticks : 1;
        for (const auto &ps : ppf->ppuStats()) {
            res.ppuActivity.push_back(static_cast<double>(ps.busyTicks) /
                                      static_cast<double>(total));
        }
        res.ppfEventsRun = ppf->stats().eventsRun;
        res.ppfObservations = ppf->stats().observations;
    }

    res.checksum = wl->checksum();

    // Publish every component counter for debugging and EXPERIMENTS.md.
    auto &d = res.detail;
    d.set("core.cycles", static_cast<double>(cs.cycles));
    d.set("core.instrs", static_cast<double>(cs.instrs));
    d.set("core.loads", static_cast<double>(cs.loads));
    d.set("core.stores", static_cast<double>(cs.stores));
    d.set("core.swPrefetches", static_cast<double>(cs.swPrefetches));
    d.set("core.commitStallCycles",
          static_cast<double>(cs.commitStallCycles));
    d.set("core.robFullCycles", static_cast<double>(cs.robFullCycles));

    d.set("l1.loads", static_cast<double>(l1.loads));
    d.set("l1.loadHits", static_cast<double>(l1.loadHits));
    d.set("l1.demandMerges", static_cast<double>(l1.demandMerges));
    d.set("l1.mshrRejects", static_cast<double>(l1.mshrRejects));
    d.set("l1.prefetchFills", static_cast<double>(l1.prefetchFills));
    d.set("l1.pfUsed", static_cast<double>(l1.pfUsed));
    d.set("l1.pfUsedLate", static_cast<double>(l1.pfUsedLate));
    d.set("l1.pfUnusedEvicted", static_cast<double>(l1.pfUnusedEvicted));
    d.set("l1.pfDropPresent", static_cast<double>(l1.pfDropPresent));
    d.set("l1.writebacks", static_cast<double>(l1.writebacks));
    d.set("l2.reads", static_cast<double>(l2.lowerReads));
    d.set("l2.readHits", static_cast<double>(l2.lowerReadHits));

    const auto &hs = mem.stats();
    d.set("mem.loadRetries", static_cast<double>(hs.loadRetries));
    d.set("mem.storeRetries", static_cast<double>(hs.storeRetries));
    d.set("mem.swPrefetchDrops", static_cast<double>(hs.swPrefetchDrops));
    d.set("mem.pfIssued", static_cast<double>(hs.pfIssued));
    d.set("mem.pfDropPresent", static_cast<double>(hs.pfDropPresent));
    d.set("mem.pfDropMerged", static_cast<double>(hs.pfDropMerged));
    d.set("mem.pfDropFault", static_cast<double>(hs.pfDropFault));

    const auto &ts = mem.tlb().stats();
    d.set("tlb.l1Hits", static_cast<double>(ts.l1Hits));
    d.set("tlb.l2Hits", static_cast<double>(ts.l2Hits));
    d.set("tlb.walks", static_cast<double>(ts.walks));
    d.set("tlb.faults", static_cast<double>(ts.faults));

    const auto &ds = mem.dram().stats();
    d.set("dram.reads", static_cast<double>(ds.reads));
    d.set("dram.writes", static_cast<double>(ds.writes));
    d.set("dram.rowHits", static_cast<double>(ds.rowHits));
    d.set("dram.rowMisses", static_cast<double>(ds.rowMisses));
    d.set("dram.prefetchReads", static_cast<double>(ds.prefetchReads));
    if (ds.reads > 0) {
        d.set("dram.avgReadLatencyNs",
              static_cast<double>(ds.totalReadLatency) /
                  static_cast<double>(ds.reads) / kTicksPerNs);
    }

    if (ppf) {
        const auto &ps = ppf->stats();
        d.set("ppf.observations", static_cast<double>(ps.observations));
        d.set("ppf.obsDropped", static_cast<double>(ps.obsDropped));
        d.set("ppf.obsNoData", static_cast<double>(ps.obsNoData));
        d.set("ppf.eventsRun", static_cast<double>(ps.eventsRun));
        d.set("ppf.traps", static_cast<double>(ps.traps));
        d.set("ppf.prefetchesEmitted",
              static_cast<double>(ps.prefetchesEmitted));
        d.set("ppf.reqDropped", static_cast<double>(ps.reqDropped));
        d.set("ppf.chainSamples", static_cast<double>(ps.chainSamples));
        d.set("ppf.blockedStalls", static_cast<double>(ps.blockedStalls));
        d.set("ppf.lookahead0", static_cast<double>(ppf->lookaheadOf(0)));
    }
    return res;
}

} // namespace epf
