#include "cpu/core.hpp"

#include <cassert>

namespace epf
{

Core::Core(EventQueue &eq, const CoreParams &params, CorePort &mem,
           unsigned coreId)
    : eq_(eq), p_(params), mem_(mem), coreId_(coreId),
      streamNamespace_(static_cast<int>(coreId) << kStreamIdCoreShift)
{
    valueReady_.reserve(1 << 20);
    // Every ROB entry costs at least one instruction, so occupancy never
    // exceeds robEntries — reserving that up front keeps the pooled
    // RobEntry pointers stable (the ring never reallocates, and
    // forbidGrowth turns any violation into a debug assert instead of
    // silent invalidation).
    rob_.reserve(p_.robEntries + 1);
    rob_.forbidGrowth();
}

void
Core::run(Generator<MicroOp> trace, std::function<void()> on_done)
{
    assert(!running_ && "core already running a trace");
    trace_ = std::move(trace);
    traceValid_ = false;
    traceDone_ = false;
    onDone_ = std::move(on_done);
    while (!rob_.empty()) {
        robPool_.release(rob_.front());
        rob_.pop_front();
    }
    robInstrs_ = 0;
    lqUsed_ = 0;
    sqUsed_ = 0;
    workRemaining_ = 0;
    pendingExec_ = 0;
    pendingIssue_ = 0;
    running_ = true;
    sleeping_ = false;
    branchPending_ = false;
    refillLeft_ = 0;
    eq_.scheduleIn(0, [this] { tick(); });
}

Core::RobEntry *
Core::newRobEntry(MicroOp op)
{
    // Pooled: reset every field the previous occupant may have left.
    RobEntry *e = robPool_.acquire();
    e->op = std::move(op);
    e->issued = false;
    e->complete = false;
    e->seq = seq_++;
    rob_.push_back(e);
    return e;
}

bool
Core::depsReady(const MicroOp &op) const
{
    for (ValueId d : op.deps) {
        if (d == 0)
            continue;
        if (d >= valueReady_.size() || !valueReady_[d])
            return false;
    }
    return true;
}

void
Core::markValueReady(ValueId id)
{
    if (id == 0)
        return;
    if (id >= valueReady_.size())
        valueReady_.resize(static_cast<std::size_t>(id) * 2 + 64, false);
    valueReady_[id] = true;
}

void
Core::wake()
{
    if (!running_ || !sleeping_)
        return;
    sleeping_ = false;
    // Account the stall cycles skipped while asleep, then resume on the
    // next clock edge.
    const Tick now = eq_.now();
    const Tick elapsed = now > sleepFrom_ ? now - sleepFrom_ : 0;
    const Cycles skipped = elapsed / p_.period;
    stats_.cycles += skipped;
    stats_.commitStallCycles += skipped;
    const Tick next_edge = ((now / p_.period) + 1) * p_.period;
    eq_.schedule(next_edge, [this] { tick(); });
}

void
Core::tick()
{
    if (sleeping_)
        return;
    ++stats_.cycles;

    bool progress = false;
    progress |= commit();
    bool committed = progress;
    progress |= completeWork();
    progress |= issueMemOps();
    progress |= dispatch();

    if (!rob_.empty() && !committed)
        ++stats_.commitStallCycles;

    if (rob_.empty() && traceDone_ && workRemaining_ == 0) {
        running_ = false;
        if (onDone_)
            eq_.scheduleIn(0, std::move(onDone_));
        onDone_ = nullptr;
        return;
    }

    if (!progress) {
        // Fully stalled on the memory system: sleep until a completion.
        sleeping_ = true;
        sleepFrom_ = eq_.now();
        return;
    }
    eq_.scheduleIn(p_.period, [this] { tick(); });
}

bool
Core::commit()
{
    // Commit bandwidth is `width` instructions per cycle; a wide Work
    // entry may overshoot the budget (committing it still takes
    // proportionally many cycles on average).
    int budget = static_cast<int>(p_.width);
    bool any = false;
    while (budget > 0 && !rob_.empty() && rob_.front()->complete) {
        RobEntry *e = rob_.front();
        budget -= static_cast<int>(e->op.instrs);
        assert(robInstrs_ >= e->op.instrs);
        robInstrs_ -= e->op.instrs;
        markValueReady(e->op.produces);
        rob_.pop_front();
        robPool_.release(e);
        any = true;
    }
    return any;
}

bool
Core::completeWork()
{
    if (pendingExec_ == 0)
        return false;
    unsigned remaining = pendingExec_;
    bool any = false;
    for (RobEntry *ep : rob_) {
        if (remaining == 0)
            break; // every candidate has been visited
        RobEntry &e = *ep;
        if (e.complete)
            continue;
        switch (e.op.kind) {
          case MicroOp::Kind::Work:
          case MicroOp::Kind::PfConfig:
            --remaining;
            if (depsReady(e.op)) {
                e.complete = true;
                --pendingExec_;
                // Results forward to consumers at execute, not commit.
                markValueReady(e.op.produces);
                any = true;
            }
            break;
          case MicroOp::Kind::BranchMiss:
            --remaining;
            if (depsReady(e.op)) {
                e.complete = true;
                --pendingExec_;
                // The branch resolved: begin the front-end refill.
                assert(branchPending_);
                branchPending_ = false;
                refillLeft_ = p_.mispredictPenalty;
                any = true;
            }
            break;
          default:
            break;
        }
    }
    return any;
}

bool
Core::issueMemOps()
{
    if (pendingIssue_ == 0)
        return false;
    unsigned load_ports = p_.lsuPorts;
    unsigned remaining = pendingIssue_;
    bool any = false;
    for (RobEntry *ep : rob_) {
        if (remaining == 0)
            break; // every candidate has been visited
        RobEntry &e = *ep;
        if (e.issued || e.complete)
            continue;
        switch (e.op.kind) {
          case MicroOp::Kind::Load: {
            --remaining;
            if (load_ports == 0)
                continue;
            if (!depsReady(e.op) || lqUsed_ >= p_.lqEntries)
                continue;
            ++lqUsed_;
            e.issued = true;
            --pendingIssue_;
            --load_ports;
            any = true;
            RobEntry *entry = ep;
            mem_.load(e.op.vaddr, nsStream(e.op.streamId), [this, entry] {
                entry->complete = true;
                // Loads broadcast their value as soon as data returns.
                markValueReady(entry->op.produces);
                assert(lqUsed_ > 0);
                --lqUsed_;
                wake();
            });
            break;
          }
          case MicroOp::Kind::Store: {
            --remaining;
            if (!depsReady(e.op) || sqUsed_ >= p_.sqEntries)
                continue;
            ++sqUsed_;
            e.issued = true;
            e.complete = true; // stores retire without waiting for data
            --pendingIssue_;
            any = true;
            mem_.store(e.op.vaddr, nsStream(e.op.streamId), [this] {
                assert(sqUsed_ > 0);
                --sqUsed_;
                wake();
            });
            break;
          }
          case MicroOp::Kind::SwPrefetch: {
            --remaining;
            if (!depsReady(e.op))
                continue;
            e.issued = true;
            e.complete = true;
            --pendingIssue_;
            any = true;
            mem_.swPrefetch(e.op.vaddr);
            break;
          }
          default:
            break;
        }
    }
    return any;
}

bool
Core::dispatch()
{
    if (branchPending_)
        return false; // wrong-path fetch: nothing useful to dispatch

    if (refillLeft_ > 0) {
        --refillLeft_; // pipeline refilling after the flush
        return true;
    }

    unsigned budget = p_.width;
    bool any = false;

    while (budget > 0) {
        // Finish charging a multi-instruction Work op first.
        if (workRemaining_ > 0) {
            std::uint32_t used = std::min<std::uint32_t>(budget,
                                                         workRemaining_);
            workRemaining_ -= used;
            budget -= used;
            stats_.instrs += used;
            any = true;
            continue;
        }

        if (!traceValid_) {
            if (traceDone_ || !trace_.next()) {
                traceDone_ = true;
                return any;
            }
            traceValid_ = true;
            if (fetchSink_ != nullptr)
                fetchSink_->onMicroOp(eq_.now(), trace_.value());
        }

        MicroOp &op = trace_.value();

        // The ROB holds instructions; a wide Work op needs room for all
        // of them (ops larger than the ROB are clamped so they can ever
        // dispatch).
        unsigned need = std::min<unsigned>(op.instrs, p_.robEntries);
        if (robInstrs_ + need > p_.robEntries) {
            ++stats_.robFullCycles;
            return any;
        }

        switch (op.kind) {
          case MicroOp::Kind::Work: {
            RobEntry &e = *newRobEntry(op);
            e.op.instrs = need;
            // Dependence-free work completes at dispatch but still
            // occupies its share of the window until it commits.
            e.complete = e.op.deps[0] == 0 && e.op.deps[1] == 0;
            if (!e.complete)
                ++pendingExec_;
            workRemaining_ = op.instrs;
            robInstrs_ += need;
            traceValid_ = false;
            any = true;
            break;
          }
          case MicroOp::Kind::Load:
          case MicroOp::Kind::Store: {
            RobEntry &e = *newRobEntry(std::move(op));
            e.op.instrs = 1;
            stats_.instrs += 1;
            if (e.op.kind == MicroOp::Kind::Load)
                ++stats_.loads;
            else
                ++stats_.stores;
            ++pendingIssue_;
            robInstrs_ += 1;
            traceValid_ = false;
            budget -= 1;
            any = true;
            break;
          }
          case MicroOp::Kind::SwPrefetch: {
            RobEntry &e = *newRobEntry(std::move(op));
            e.op.instrs = 1;
            stats_.instrs += 1;
            ++stats_.swPrefetches;
            ++pendingIssue_;
            robInstrs_ += 1;
            traceValid_ = false;
            budget -= 1;
            any = true;
            break;
          }
          case MicroOp::Kind::BranchMiss: {
            RobEntry &e = *newRobEntry(std::move(op));
            e.op.instrs = 1;
            stats_.instrs += 1;
            ++stats_.branchMisses;
            ++pendingExec_;
            robInstrs_ += 1;
            // Resolution may already be possible (dep ready): leave the
            // completion to completeWork on this or a later cycle.
            branchPending_ = true;
            traceValid_ = false;
            budget -= 1;
            any = true;
            // Stop dispatching: everything younger is wrong-path.
            return any;
          }
          case MicroOp::Kind::PfConfig: {
            ++stats_.configOps;
            if (op.config)
                op.config();
            // Instruction cost is charged as the budget drains.
            workRemaining_ = op.instrs;
            traceValid_ = false;
            any = true;
            break;
          }
        }
    }
    return any;
}

} // namespace epf
