/**
 * @file
 * Trace-driven out-of-order core timing model.
 *
 * Models the Table 1 main core: 3-wide, 40-entry ROB, 16-entry load
 * queue, 32-entry store queue, running at 3.2 GHz.  Ops dispatch in
 * order, loads issue out of order once their address dependences resolve
 * (subject to LQ capacity, two LSU ports and L1 MSHR backpressure), and
 * ops commit in order.  This reproduces the mechanism the paper's
 * motivation rests on: dependent loads serialise; independent loads
 * overlap only within the small window.
 */

#ifndef EPF_CPU_CORE_HPP
#define EPF_CPU_CORE_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "cpu/generator.hpp"
#include "cpu/micro_op.hpp"
#include "mem/core_port.hpp"
#include "sim/clock.hpp"
#include "sim/event_queue.hpp"
#include "sim/object_pool.hpp"
#include "sim/ring_buffer.hpp"

namespace epf
{

/**
 * Bit position where a core's id is OR-ed into the stream ids it sends
 * to the memory system (0 for core 0, so single-core traces are
 * unchanged).  Workload-generated stream ids stay far below bit 20.
 */
inline constexpr int kStreamIdCoreShift = 20;

/** Main-core configuration (Table 1 values by default). */
struct CoreParams
{
    unsigned width = 3;     ///< dispatch/commit width (instructions)
    unsigned robEntries = 40;
    unsigned lqEntries = 16;
    unsigned sqEntries = 32;
    unsigned lsuPorts = 2;  ///< loads issued per cycle
    Tick period = 5;        ///< 3.2 GHz on the 62.5 ps grid
    /** Front-end refill after a mispredicted branch resolves. */
    unsigned mispredictPenalty = 12;
};

/**
 * Observer of the core's fetch stream.  onMicroOp() fires once per
 * micro-op, at the tick the op is pulled from the trace generator —
 * i.e. after the generator's host-side work for that op has run, which
 * is the instant any data it mutated becomes architecturally visible.
 * The trace capture subsystem records the stream through this hook.
 */
class MicroOpSink
{
  public:
    virtual ~MicroOpSink() = default;
    virtual void onMicroOp(Tick now, const MicroOp &op) = 0;
};

/** The out-of-order core. */
class Core
{
  public:
    struct Stats
    {
        std::uint64_t cycles = 0;
        std::uint64_t instrs = 0;
        std::uint64_t loads = 0;
        std::uint64_t stores = 0;
        std::uint64_t swPrefetches = 0;
        std::uint64_t configOps = 0;
        std::uint64_t branchMisses = 0;
        /** Cycles in which nothing committed while the ROB was non-empty. */
        std::uint64_t commitStallCycles = 0;
        /** Cycles dispatch stalled on a full ROB. */
        std::uint64_t robFullCycles = 0;
    };

    /**
     * @param mem     the core's private memory port
     * @param coreId  position of this core in a multi-core machine.
     *                Stream ids (the PC proxies prefetchers train on)
     *                are namespaced per core: core 0 passes them
     *                through unchanged, core N tags bit 20+ so two
     *                cores' streams can never alias in shared traces
     *                or logs.
     */
    Core(EventQueue &eq, const CoreParams &params, CorePort &mem,
         unsigned coreId = 0);

    /**
     * Run @p trace to completion.  @p on_done fires on the cycle the last
     * op commits.  Only one run may be active at a time.
     */
    void run(Generator<MicroOp> trace, std::function<void()> on_done);

    const Stats &stats() const { return stats_; }
    const CoreParams &params() const { return p_; }
    unsigned coreId() const { return coreId_; }

    /** Attach (or detach with nullptr) a fetch-stream observer. */
    void setFetchSink(MicroOpSink *sink) { fetchSink_ = sink; }

  private:
    struct RobEntry
    {
        MicroOp op;
        bool issued = false;   ///< memory op sent to the hierarchy
        bool complete = false;
        std::uint64_t seq = 0;
    };

    /** One simulated core cycle. */
    void tick();

    /** Each phase reports whether it made progress this cycle. */
    bool commit();
    bool completeWork();
    bool issueMemOps();
    bool dispatch();

    /**
     * Re-arm the cycle loop after a memory completion.  The core goes to
     * sleep when a cycle makes no progress (every op is waiting on the
     * memory system); this keeps long stalls cheap to simulate without
     * changing timing: the next state change can only be triggered by a
     * completion, which calls wake().
     */
    void wake();

    bool depsReady(const MicroOp &op) const;
    void markValueReady(ValueId id);

    /** Acquire a pooled entry, initialise it from @p op, append to rob_. */
    RobEntry *newRobEntry(MicroOp op);

    /** @p sid namespaced with this core's id (identity on core 0). */
    int nsStream(int sid) const { return sid | streamNamespace_; }

    EventQueue &eq_;
    CoreParams p_;
    CorePort &mem_;
    unsigned coreId_ = 0;
    /** OR-mask applied to every stream id (0 for core 0). */
    int streamNamespace_ = 0;

    Generator<MicroOp> trace_;
    bool traceValid_ = false;  ///< a fetched op is waiting in trace_.value()
    bool traceDone_ = false;
    std::function<void()> onDone_;
    MicroOpSink *fetchSink_ = nullptr;

    /**
     * The reorder buffer: a FIFO ring of pooled entries.  Entries are
     * pool-backed so completion callbacks can hold a stable RobEntry*
     * across the entry's whole flight, and the ring reuses one buffer
     * forever — dispatching allocates nothing once the pool is warm.
     */
    Ring<RobEntry *> rob_;
    ObjectPool<RobEntry> robPool_;
    /** ROB occupancy in *instructions* (a 40-entry ROB holds 40). */
    unsigned robInstrs_ = 0;
    unsigned lqUsed_ = 0;
    unsigned sqUsed_ = 0;
    /** Instruction-dispatch budget carried across cycles for wide Work ops. */
    std::uint32_t workRemaining_ = 0;

    /**
     * Host-side scan bounds (no timing effect).  completeWork() can only
     * act on incomplete Work/BranchMiss entries and issueMemOps() on
     * unissued Load/Store/SwPrefetch entries; these count exactly those
     * candidates, maintained at dispatch and at the point an entry stops
     * being a candidate.  Each scan visits the same entries in the same
     * order and makes identical decisions — it merely skips entirely at
     * zero and stops once every candidate has been visited, instead of
     * walking the full ROB every cycle.
     */
    unsigned pendingExec_ = 0;
    unsigned pendingIssue_ = 0;

    std::vector<bool> valueReady_;
    std::uint64_t seq_ = 0;
    bool running_ = false;
    bool sleeping_ = false;
    /** An unresolved mispredicted branch is blocking dispatch. */
    bool branchPending_ = false;
    /** Front-end refill cycles left after a branch resolved. */
    unsigned refillLeft_ = 0;
    /** Cycles skipped while asleep (accounted into stats_.cycles). */
    Tick sleepFrom_ = 0;

    Stats stats_;
};

} // namespace epf

#endif // EPF_CPU_CORE_HPP
