/**
 * @file
 * Minimal C++20 coroutine generator.
 *
 * Workloads are written as coroutines that lazily co_yield micro-ops as
 * the core model consumes them; functional execution (the real loads and
 * stores on host arrays) is interleaved with generation, so trace memory
 * never has to be materialised.
 */

#ifndef EPF_CPU_GENERATOR_HPP
#define EPF_CPU_GENERATOR_HPP

#include <coroutine>
#include <exception>
#include <utility>

namespace epf
{

/** Lazily produced stream of T values from a coroutine. */
template <typename T>
class Generator
{
  public:
    struct promise_type
    {
        T current{};

        Generator
        get_return_object()
        {
            return Generator{
                std::coroutine_handle<promise_type>::from_promise(*this)};
        }

        std::suspend_always initial_suspend() noexcept { return {}; }
        std::suspend_always final_suspend() noexcept { return {}; }

        std::suspend_always
        yield_value(T v)
        {
            current = std::move(v);
            return {};
        }

        void return_void() {}
        void unhandled_exception() { std::terminate(); }
    };

    Generator() = default;

    explicit Generator(std::coroutine_handle<promise_type> h) : h_(h) {}

    Generator(Generator &&other) noexcept : h_(std::exchange(other.h_, {})) {}

    Generator &
    operator=(Generator &&other) noexcept
    {
        if (this != &other) {
            destroy();
            h_ = std::exchange(other.h_, {});
        }
        return *this;
    }

    Generator(const Generator &) = delete;
    Generator &operator=(const Generator &) = delete;

    ~Generator() { destroy(); }

    /** Advance to the next value. @return false when exhausted. */
    bool
    next()
    {
        if (!h_ || h_.done())
            return false;
        h_.resume();
        return !h_.done();
    }

    /** The current value (valid after next() returned true). */
    T &value() { return h_.promise().current; }

    /** True if the coroutine can still produce values. */
    bool alive() const { return h_ && !h_.done(); }

  private:
    void
    destroy()
    {
        if (h_) {
            h_.destroy();
            h_ = {};
        }
    }

    std::coroutine_handle<promise_type> h_{};
};

} // namespace epf

#endif // EPF_CPU_GENERATOR_HPP
