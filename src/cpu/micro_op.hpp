/**
 * @file
 * The micro-op vocabulary of the trace-driven core model.
 *
 * A workload's inner loops are expressed as a stream of micro-ops with
 * explicit *value* dependences: a load produces a value id, and any later
 * op whose address (or input) derives from that load names the id in its
 * dependence list.  This is exactly the information an out-of-order core
 * extracts from register dataflow, and is what limits memory-level
 * parallelism for irregular code (the paper's Figure 2).
 */

#ifndef EPF_CPU_MICRO_OP_HPP
#define EPF_CPU_MICRO_OP_HPP

#include <array>
#include <cstdint>
#include <functional>

#include "sim/types.hpp"

namespace epf
{

/** Value id produced by a load or computation (0 = none). */
using ValueId = std::uint32_t;

/** One micro-op of the main-core trace. */
struct MicroOp
{
    enum class Kind : std::uint8_t
    {
        Work,       ///< @ref instrs ALU/control instructions
        Load,       ///< demand load of @ref vaddr
        Store,      ///< demand store to @ref vaddr
        SwPrefetch, ///< software prefetch instruction to @ref vaddr
        PfConfig,   ///< prefetcher-configuration instruction(s)
        /**
         * A *mispredicted* branch.  Correctly predicted branches cost
         * nothing beyond their Work instruction; workloads emit this op
         * only when their modelled predictor would miss.  Dispatch stops
         * at the branch (wrong-path work is squashed anyway), resumes
         * after it resolves — which needs its dependences, i.e. the
         * loaded data it compares — plus a pipeline-refill penalty.
         */
        BranchMiss,
    };

    Kind kind = Kind::Work;
    /** Dispatch cost in dynamic instructions. */
    std::uint32_t instrs = 1;
    /** Target address for Load / Store / SwPrefetch. */
    Addr vaddr = 0;
    /** Stable id of the source-level load/store site (PC proxy). */
    std::int16_t streamId = -1;
    /** Value produced (loads and value-producing work); 0 if none. */
    ValueId produces = 0;
    /** Value dependences that must resolve before issue/completion. */
    std::array<ValueId, 2> deps{{0, 0}};
    /**
     * Action run at dispatch for PfConfig ops.  May mutate prefetcher
     * configuration mid-trace, including the PPF kernel table (adding
     * or patching kernels); KernelTable::version() moves on every such
     * mutation, which is what lets the PPF's decoded-program cache
     * refresh before the next callback-kernel dispatch instead of
     * running stale code.
     */
    std::function<void()> config;
};

/** Helper for building micro-ops with fresh value ids. */
class OpFactory
{
  public:
    /** Allocate a fresh value id. */
    ValueId freshId() { return nextId_++; }

    /** Plain work: @p instrs instructions, no dependences. */
    static MicroOp
    work(std::uint32_t instrs)
    {
        MicroOp op;
        op.kind = MicroOp::Kind::Work;
        op.instrs = instrs;
        return op;
    }

    /** Work that consumes @p a (and optionally @p b). */
    static MicroOp
    workDep(std::uint32_t instrs, ValueId a, ValueId b = 0)
    {
        MicroOp op = work(instrs);
        op.deps = {a, b};
        return op;
    }

    /** Value-producing work (e.g.\ a hash of a loaded key). */
    MicroOp
    workVal(std::uint32_t instrs, ValueId &out, ValueId a, ValueId b = 0)
    {
        MicroOp op = workDep(instrs, a, b);
        out = freshId();
        op.produces = out;
        return op;
    }

    /** A load producing a fresh value id (returned via @p out). */
    MicroOp
    load(Addr vaddr, std::int16_t stream, ValueId &out, ValueId a = 0,
         ValueId b = 0)
    {
        MicroOp op;
        op.kind = MicroOp::Kind::Load;
        op.vaddr = vaddr;
        op.streamId = stream;
        op.deps = {a, b};
        out = freshId();
        op.produces = out;
        return op;
    }

    /** A load whose value nothing depends on. */
    MicroOp
    loadDiscard(Addr vaddr, std::int16_t stream, ValueId a = 0,
                ValueId b = 0)
    {
        MicroOp op;
        op.kind = MicroOp::Kind::Load;
        op.vaddr = vaddr;
        op.streamId = stream;
        op.deps = {a, b};
        return op;
    }

    /** A store (address may depend on earlier values). */
    static MicroOp
    store(Addr vaddr, std::int16_t stream, ValueId a = 0, ValueId b = 0)
    {
        MicroOp op;
        op.kind = MicroOp::Kind::Store;
        op.vaddr = vaddr;
        op.streamId = stream;
        op.deps = {a, b};
        return op;
    }

    /** A software prefetch instruction. */
    static MicroOp
    swpf(Addr vaddr, ValueId a = 0)
    {
        MicroOp op;
        op.kind = MicroOp::Kind::SwPrefetch;
        op.vaddr = vaddr;
        op.deps = {a, 0};
        return op;
    }

    /** A mispredicted branch resolving on values @p a / @p b. */
    static MicroOp
    branchMiss(ValueId a, ValueId b = 0)
    {
        MicroOp op;
        op.kind = MicroOp::Kind::BranchMiss;
        op.instrs = 1;
        op.deps = {a, b};
        return op;
    }

    /** Prefetcher-configuration op costing @p instrs instructions. */
    static MicroOp
    pfConfig(std::uint32_t instrs, std::function<void()> fn)
    {
        MicroOp op;
        op.kind = MicroOp::Kind::PfConfig;
        op.instrs = instrs;
        op.config = std::move(fn);
        return op;
    }

  private:
    ValueId nextId_ = 1;
};

} // namespace epf

#endif // EPF_CPU_MICRO_OP_HPP
