/**
 * @file
 * Compiler-assistance demo (Section 6): builds the paper's Figure 4/5
 * loop `acc += C[B[A[x]]]` in the mini-IR, runs both the
 * software-prefetch conversion pass and the pragma pass, and prints the
 * generated PPU event kernels plus the configuration the compiler would
 * insert before the loop.  Also demonstrates the diagnostics for
 * patterns that cannot be converted.
 */

#include <iostream>

#include "compiler/ir.hpp"
#include "compiler/passes.hpp"
#include "isa/disasm.hpp"

using namespace epf;

namespace
{

void
dump(const char *title, const PassResult &res)
{
    std::cout << "---- " << title << " ----\n";
    if (!res.ok) {
        std::cout << "conversion failed: " << res.failureReason << "\n\n";
        return;
    }
    for (const auto &k : res.program.kernels)
        std::cout << disassemble(k);
    std::cout << "filters:\n";
    for (const auto &f : res.program.filters) {
        std::cout << "  [" << std::hex << f.base << ", " << f.limit
                  << std::dec << ") " << f.name
                  << (f.onLoadLocal >= 0 ? " -> kernel " +
                                               std::to_string(
                                                   f.onLoadLocal)
                                         : "")
                  << (f.timeSource ? " [timeSource]" : "")
                  << (f.timedStart ? " [timedStart]" : "")
                  << (f.timedEnd ? " [timedEnd]" : "") << "\n";
    }
    std::cout << "globals:\n";
    for (const auto &g : res.program.globals)
        std::cout << "  g" << g.slot << " = 0x" << std::hex << g.value
                  << std::dec << "  (" << g.name << ")\n";
    for (const auto &r : res.program.remarks)
        std::cout << "remark: " << r << "\n";
    std::cout << "code footprint: " << res.program.codeBytes()
              << " bytes\n\n";
}

} // namespace

int
main()
{
    std::cout << "The paper's Figure 4 loop:  for (x) acc += C[B[A[x]]];\n"
              << "annotated with             swpf(&C[B[A[x+16]]]);\n\n";

    LoopIR ir;
    IrNode *a = ir.addArray("A", 0x100000, 8, 1 << 16);
    IrNode *b = ir.addArray("B", 0x300000, 8, 1 << 16);
    IrNode *c = ir.addArray("C", 0x500000, 8, 1 << 16);
    IrNode *x = ir.indVar();

    // Loop body loads (what the pragma pass sees).
    IrNode *av = ir.load(ir.index(a, x, 8), 8, "A");
    IrNode *bv = ir.load(ir.index(b, av, 8), 8, "B");
    (void)ir.load(ir.index(c, bv, 8), 8, "C");

    // The software prefetch (what the conversion pass starts from).
    IrNode *a2 = ir.loadForSwpf(
        ir.index(a, ir.bin(IrBin::kAdd, x, ir.cnst(16)), 8), 8, "A_pf");
    IrNode *b2 = ir.loadForSwpf(ir.index(b, a2, 8), 8, "B_pf");
    ir.swpf(ir.index(c, b2, 8));

    dump("software-prefetch conversion (Algorithm 1)",
         convertSoftwarePrefetches(ir));
    dump("#pragma prefetch generation (Section 6.4)",
         generateFromPragma(ir));

    // A pattern that cannot be converted: linked-list walking needs a
    // control-flow loop, which a software prefetch cannot express.
    std::cout << "A non-convertible pattern (list walk via loop-carried "
                 "phi):\n";
    LoopIR bad;
    (void)bad.addArray("heads", 0x700000, 8, 1024);
    IrNode *l = bad.phi("l");
    bad.swpf(bad.bin(IrBin::kAdd, l, bad.cnst(8)));
    dump("conversion attempt", convertSoftwarePrefetches(bad));

    return 0;
}
