/**
 * @file
 * Hash-join tour: the paper's motivating example (Figure 1/2).
 *
 * Runs the chained hash join (HJ-8) under every latency-hiding technique
 * the paper compares — no prefetching, stride, software prefetching,
 * compiler-converted events, and hand-written events with and without
 * event triggering — and prints the resulting execution profile.
 */

#include <iostream>

#include "runner/experiment.hpp"
#include "runner/tables.hpp"

int
main(int argc, char **argv)
{
    double scale = argc > 1 ? std::atof(argv[1]) : 0.25;

    std::cout << "Hash join (HJ-8): probe side with chained buckets, as "
                 "in the paper's Fig. 1.\n\n";

    epf::RunConfig cfg;
    cfg.scale.factor = scale;
    cfg.technique = epf::Technique::kNone;
    epf::RunResult base = epf::runExperiment("HJ-8", cfg);

    epf::TextTable table({"Technique", "Cycles", "Speedup", "L1 hit",
                          "Utilisation", "Instrs"});

    auto row = [&](epf::Technique t) {
        cfg.technique = t;
        epf::RunResult r = epf::runExperiment("HJ-8", cfg);
        if (!r.available) {
            table.addRow({epf::techniqueName(t), "n/a", "-", "-", "-",
                          "-"});
            return;
        }
        if (r.checksum != base.checksum) {
            std::cerr << "checksum mismatch for "
                      << epf::techniqueName(t) << "\n";
            std::exit(1);
        }
        table.addRow(
            {epf::techniqueName(t), std::to_string(r.cycles),
             epf::TextTable::num(static_cast<double>(base.cycles) /
                                 static_cast<double>(r.cycles)) +
                 "x",
             epf::TextTable::num(r.l1ReadHitRate),
             epf::TextTable::num(r.pfUtilisation),
             std::to_string(r.instrs)});
    };

    row(epf::Technique::kNone);
    row(epf::Technique::kStride);
    row(epf::Technique::kSoftware);
    row(epf::Technique::kPragma);
    row(epf::Technique::kConverted);
    row(epf::Technique::kManualBlocked);
    row(epf::Technique::kManual);

    table.print(std::cout);
    std::cout << "\nNote how software prefetching pays with extra "
                 "instructions, and blocking PPUs lose\nthe latency "
                 "tolerance that event triggering provides (paper "
                 "Sections 3 and 7.2).\n";
    return 0;
}
