/**
 * @file
 * Quickstart: run one benchmark with and without the programmable
 * prefetcher and print the speedup.
 *
 * Usage: quickstart [workload] [scale]
 *   workload: one of the Table 2 names (default RandAcc)
 *   scale:    input scale factor (default 0.25 for a fast demo)
 */

#include <cstdlib>
#include <iostream>

#include "runner/experiment.hpp"

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "RandAcc";
    double scale = argc > 2 ? std::atof(argv[2]) : 0.25;

    epf::RunConfig cfg;
    cfg.scale.factor = scale;

    std::cout << "workload: " << name << " (scale " << scale << ")\n";

    cfg.technique = epf::Technique::kNone;
    epf::RunResult base = epf::runExperiment(name, cfg);
    std::cout << "  no prefetch : " << base.cycles << " cycles, L1 read "
              << "hit rate " << base.l1ReadHitRate << "\n";

    cfg.technique = epf::Technique::kManual;
    epf::RunResult ppf = epf::runExperiment(name, cfg);
    std::cout << "  programmable: " << ppf.cycles << " cycles, L1 read "
              << "hit rate " << ppf.l1ReadHitRate << ", utilisation "
              << ppf.pfUtilisation << "\n";

    if (base.checksum != ppf.checksum) {
        std::cout << "CHECKSUM MISMATCH\n";
        return 1;
    }
    std::cout << "  speedup     : "
              << static_cast<double>(base.cycles) /
                     static_cast<double>(ppf.cycles)
              << "x  (checksums match)\n";

    if (std::getenv("EPF_DEBUG") != nullptr) {
        std::cout << "--- baseline detail ---\n";
        base.detail.dump(std::cout);
        std::cout << "--- ppf detail ---\n";
        ppf.detail.dump(std::cout);
    }
    return 0;
}
