/**
 * @file
 * Authoring custom prefetch kernels for a new data structure.
 *
 * The paper's API story: a programmer (or compiler) describes events for
 * their own traversal.  Here we build a structure none of the shipped
 * benchmarks use — an array of skip-list-style towers, where each slot
 * points at a chain of nodes — write the event kernels by hand with the
 * KernelBuilder, configure the address filter and a memory-request tag,
 * and run the whole system on it.
 */

#include <cstdlib>
#include <iostream>
#include <vector>

#include "cpu/core.hpp"
#include "isa/builder.hpp"
#include "isa/disasm.hpp"
#include "mem/hierarchy.hpp"
#include "ppf/ppf.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace
{

// Links are guest addresses (0 = null): the PPU kernels read them out
// of fetched lines, so they must live in the guest address space.
struct Node
{
    std::uint64_t value = 0;
    epf::Addr next = 0;
    std::uint64_t pad[6]; // 64 B nodes: one line each
};

struct Tower
{
    epf::Addr head = 0;
    std::uint64_t len = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    const std::size_t towers_n = argc > 1
                                     ? std::strtoull(argv[1], nullptr, 10)
                                     : 65536;
    const unsigned chain = 3;

    // Build the structure: towers_n towers, each with a short chain of
    // scatter-allocated nodes.  Regions are registered first so the
    // chain links can be stored as guest addresses.
    epf::Rng rng(7);
    std::vector<Tower> towers(towers_n);
    std::vector<Node> pool(towers_n * chain);

    epf::EventQueue eq;
    epf::GuestMemory gmem;
    const epf::Addr towers_base = gmem.addRegion(
        "towers", towers.data(), towers.size() * sizeof(Tower));
    const epf::Addr pool_base =
        gmem.addRegion("pool", pool.data(), pool.size() * sizeof(Node));

    std::vector<std::uint32_t> perm(pool.size());
    for (std::size_t i = 0; i < perm.size(); ++i)
        perm[i] = static_cast<std::uint32_t>(i);
    for (std::size_t i = perm.size() - 1; i > 0; --i)
        std::swap(perm[i], perm[rng.below(i + 1)]);
    std::size_t slot = 0;
    for (auto &t : towers) {
        for (unsigned c = 0; c < chain; ++c) {
            const std::uint32_t idx = perm[slot++];
            Node &n = pool[idx];
            n.value = rng.next() & 0xFFFF;
            n.next = t.head;
            t.head = pool_base + idx * sizeof(Node);
            t.len += 1;
        }
    }

    epf::MemoryHierarchy mem(eq, gmem, epf::MemParams::defaults());
    epf::Core core(eq, epf::CoreParams{}, mem.port());

    // ---- Hand-written prefetch kernels ----------------------------
    epf::PpfConfig pcfg;
    epf::ProgrammablePrefetcher ppf(eq, gmem, pcfg);
    unsigned g_towers = ppf.allocGlobal(towers_base);

    // Node fills chase the next pointer via a memory-request tag.
    epf::KernelBuilder knode("on_node_prefetch");
    {
        auto done = knode.newLabel();
        knode.vaddr(1)
            .ldLine(2, 1, 8) // node->next
            .li(3, 0)
            .beq(2, 3, done);
        knode.prefetchTag(2, 0); // patched below
        knode.bind(done).halt();
    }
    epf::KernelId k_node = ppf.kernels().add(knode.build());
    std::int32_t tag_node = ppf.registerTag(k_node);
    for (auto &in : ppf.kernels().mutableKernel(k_node).code) {
        if (in.op == epf::Opcode::kPrefetchTag)
            in.imm = tag_node;
    }

    // Tower fills start the walk at the head pointer.
    epf::KernelBuilder ktower("on_tower_prefetch");
    {
        auto done = ktower.newLabel();
        ktower.vaddr(1).ldLine(2, 1, 0).li(3, 0).beq(2, 3, done)
            .prefetchTag(2, tag_node).bind(done).halt();
    }
    epf::KernelId k_tower = ppf.kernels().add(ktower.build());

    // Loads of the tower array look ahead with the EWMA distance.
    epf::KernelBuilder kload("on_towers_load");
    kload.vaddr(1)
        .gread(2, g_towers)
        .sub(1, 1, 2)
        .shri(1, 1, 4) // 16-byte towers
        .lookahead(3, 0)
        .add(1, 1, 3)
        .shli(1, 1, 4)
        .add(1, 1, 2)
        .prefetchCb(1, k_tower)
        .halt();
    epf::KernelId k_load = ppf.kernels().add(kload.build());

    epf::FilterEntry fe;
    fe.name = "towers";
    fe.base = towers_base;
    fe.limit = fe.base + towers.size() * sizeof(Tower);
    fe.onLoad = k_load;
    fe.timeSource = true;
    fe.timedStart = true;
    ppf.addFilter(fe);
    epf::FilterEntry pe;
    pe.name = "pool";
    pe.base = pool_base;
    pe.limit = pe.base + pool.size() * sizeof(Node);
    pe.timedEnd = true;
    ppf.addFilter(pe);

    std::cout << "PPU kernels:\n";
    std::cout << epf::disassemble(ppf.kernels()[k_load]);
    std::cout << epf::disassemble(ppf.kernels()[k_tower]);
    std::cout << epf::disassemble(ppf.kernels()[k_node]) << "\n";

    // ---- The main-core traversal ----------------------------------
    auto node_at = [&](epf::Addr a) -> const Node & {
        return pool[(a - pool_base) / sizeof(Node)];
    };
    auto traverse = [&](bool) -> epf::Generator<epf::MicroOp> {
        epf::OpFactory f;
        for (std::size_t i = 0; i < towers.size(); ++i) {
            epf::ValueId v_t;
            co_yield f.load(towers_base + i * sizeof(Tower), 1, v_t);
            epf::ValueId prev = v_t;
            for (epf::Addr n = towers[i].head; n != 0;
                 n = node_at(n).next) {
                epf::ValueId v_n;
                co_yield f.load(n, 2, v_n, prev);
                co_yield epf::OpFactory::workDep(2, v_n);
                prev = v_n;
            }
        }
    };

    auto run = [&](bool with_ppf) {
        if (with_ppf) {
            mem.setListener(&ppf);
            mem.setPrefetchSource(&ppf);
            ppf.setKick([&mem] { mem.kickPrefetcher(); });
        }
        bool done = false;
        core.run(traverse(false), [&] { done = true; });
        while (!eq.empty())
            eq.runOne();
        return core.stats().cycles;
    };

    std::uint64_t base_cycles = run(false);
    std::uint64_t base_delta = base_cycles;
    std::uint64_t ppf_cycles = run(true) - base_cycles;
    std::cout << "no prefetch : " << base_delta << " cycles\n";
    std::cout << "custom PPF  : " << ppf_cycles << " cycles  ("
              << static_cast<double>(base_delta) /
                     static_cast<double>(ppf_cycles)
              << "x)\n";
    return 0;
}
